// Package evo implements NSGA-II [6] (Deb et al.), the evolutionary baseline
// the paper evaluates (§VI-A): fast non-dominated sorting, crowding-distance
// diversity preservation, binary tournament selection, simulated binary
// crossover (SBX) and polynomial mutation over the [0,1]^D decision box.
//
// Being a randomized method, NSGA-II produces frontiers that are not
// consistent across budgets — the frontier built with 50 probes can
// contradict the one built with 40 (paper Fig. 4(e)) — which the Consistency
// metric in internal/metrics quantifies.
package evo

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/model"
	"repro/internal/moo"
	"repro/internal/objective"
	"repro/internal/problem"
)

// Method is the NSGA-II baseline.
type Method struct {
	Objectives []model.Model
	// Evaluator, when non-nil, is used instead of building one over
	// Objectives — injected by callers that share a memo cache and
	// evaluation counter across methods. Whole generations are evaluated
	// through its batch path.
	Evaluator *problem.Evaluator
	// Pop is the population size. Zero sizes the population to the
	// requested point count (min 20, rounded up to even): NSGA-II's final
	// front is capped by its population, so "requesting N Pareto points"
	// means a population of N, as in the paper's probe ladder.
	Pop int
	// GensPerPoint scales generations with the requested point count:
	// generations = max(MinGens, GensPerPoint × Points) (default 2).
	GensPerPoint int
	// MinGens floors the generation count (default 50): NSGA-II needs a
	// substantial number of generations before its front is meaningful,
	// regardless of how few points were requested.
	MinGens int
	// EtaC and EtaM are the SBX and polynomial-mutation distribution
	// indices (defaults 15 and 20).
	EtaC, EtaM float64
	// PMut is the per-gene mutation probability (default 1/D).
	PMut float64
}

// Name implements moo.Method.
func (m *Method) Name() string { return "Evo" }

func (m *Method) defaults(points, dim int) {
	if m.Pop == 0 {
		m.Pop = points
		if m.Pop < 20 {
			m.Pop = 20
		}
	}
	if m.Pop%2 == 1 {
		m.Pop++
	}
	if m.GensPerPoint == 0 {
		m.GensPerPoint = 2
	}
	if m.MinGens == 0 {
		m.MinGens = 50
	}
	if m.EtaC == 0 {
		m.EtaC = 15
	}
	if m.EtaM == 0 {
		m.EtaM = 20
	}
	if m.PMut == 0 {
		m.PMut = 1 / float64(dim)
	}
}

type indiv struct {
	x     []float64
	f     objective.Point
	rank  int
	crowd float64
}

// Run implements moo.Method.
func (m *Method) Run(opt moo.Options) ([]objective.Solution, error) {
	tr := opt.Track().Named(m.Name())
	ev, err := moo.Evaluator(m.Evaluator, m.Objectives)
	if err != nil {
		return nil, err
	}
	dim := ev.Dim()
	m.defaults(opt.Points, dim)
	rng := rand.New(rand.NewSource(opt.Seed))

	// Evaluate a whole cohort through the evaluator's batch path: one worker
	// pool per generation instead of per-individual model calls.
	evalCohort := func(xs [][]float64) []indiv {
		fs := ev.EvalBatch(xs)
		out := make([]indiv, len(xs))
		for i := range xs {
			out[i] = indiv{x: xs[i], f: fs[i]}
		}
		return out
	}

	seeds := make([][]float64, m.Pop)
	for i := range seeds {
		x := make([]float64, dim)
		for d := range x {
			x[d] = rng.Float64()
		}
		seeds[i] = x
	}
	pop := evalCohort(seeds)
	rankAndCrowd(pop)

	gens := m.GensPerPoint * opt.Points
	if gens < m.MinGens {
		gens = m.MinGens
	}
	for g := 0; g < gens; g++ {
		if tr.Expired() {
			break
		}
		offspring := make([][]float64, 0, m.Pop)
		for len(offspring) < m.Pop {
			p1 := tournament(pop, rng)
			p2 := tournament(pop, rng)
			c1, c2 := m.sbx(p1.x, p2.x, rng)
			m.mutate(c1, rng)
			m.mutate(c2, rng)
			offspring = append(offspring, c1, c2)
		}
		pop = survive(append(pop, evalCohort(offspring)...), m.Pop)
		tr.Report(frontier(pop))
	}
	return tr.Finish(frontier(pop)), nil
}

// frontier extracts the rank-0 individuals as a filtered solution set.
func frontier(pop []indiv) []objective.Solution {
	var out []objective.Solution
	for _, ind := range pop {
		if ind.rank == 0 {
			out = append(out, objective.Solution{F: ind.f.Clone(), X: append([]float64(nil), ind.x...)})
		}
	}
	return objective.Filter(out)
}

// rankAndCrowd assigns non-domination ranks and crowding distances in place.
func rankAndCrowd(pop []indiv) {
	n := len(pop)
	domCount := make([]int, n)
	dominates := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if pop[i].f.Dominates(pop[j].f) {
				dominates[i] = append(dominates[i], j)
			} else if pop[j].f.Dominates(pop[i].f) {
				domCount[i]++
			}
		}
	}
	var fronts [][]int
	var current []int
	for i := 0; i < n; i++ {
		if domCount[i] == 0 {
			pop[i].rank = 0
			current = append(current, i)
		}
	}
	for len(current) > 0 {
		fronts = append(fronts, current)
		var next []int
		for _, i := range current {
			for _, j := range dominates[i] {
				domCount[j]--
				if domCount[j] == 0 {
					pop[j].rank = len(fronts)
					next = append(next, j)
				}
			}
		}
		current = next
	}
	for _, front := range fronts {
		assignCrowding(pop, front)
	}
}

func assignCrowding(pop []indiv, front []int) {
	if len(front) == 0 {
		return
	}
	k := len(pop[front[0]].f)
	for _, i := range front {
		pop[i].crowd = 0
	}
	for d := 0; d < k; d++ {
		sort.Slice(front, func(a, b int) bool {
			return pop[front[a]].f[d] < pop[front[b]].f[d]
		})
		lo := pop[front[0]].f[d]
		hi := pop[front[len(front)-1]].f[d]
		span := hi - lo
		pop[front[0]].crowd = math.Inf(1)
		pop[front[len(front)-1]].crowd = math.Inf(1)
		if span <= 0 {
			continue
		}
		for i := 1; i < len(front)-1; i++ {
			pop[front[i]].crowd += (pop[front[i+1]].f[d] - pop[front[i-1]].f[d]) / span
		}
	}
}

// survive performs elitist (μ+λ) truncation by rank then crowding.
func survive(union []indiv, target int) []indiv {
	rankAndCrowd(union)
	sort.SliceStable(union, func(a, b int) bool {
		if union[a].rank != union[b].rank {
			return union[a].rank < union[b].rank
		}
		return union[a].crowd > union[b].crowd
	})
	out := make([]indiv, target)
	copy(out, union[:target])
	rankAndCrowd(out)
	return out
}

// tournament is binary tournament selection by (rank, crowding).
func tournament(pop []indiv, rng *rand.Rand) indiv {
	a := pop[rng.Intn(len(pop))]
	b := pop[rng.Intn(len(pop))]
	if a.rank < b.rank || (a.rank == b.rank && a.crowd > b.crowd) {
		return a
	}
	return b
}

// sbx is simulated binary crossover clipped to [0,1].
func (m *Method) sbx(p1, p2 []float64, rng *rand.Rand) ([]float64, []float64) {
	d := len(p1)
	c1 := make([]float64, d)
	c2 := make([]float64, d)
	for i := 0; i < d; i++ {
		if rng.Float64() < 0.9 {
			u := rng.Float64()
			var beta float64
			if u <= 0.5 {
				beta = math.Pow(2*u, 1/(m.EtaC+1))
			} else {
				beta = math.Pow(1/(2*(1-u)), 1/(m.EtaC+1))
			}
			c1[i] = clamp01(0.5 * ((1+beta)*p1[i] + (1-beta)*p2[i]))
			c2[i] = clamp01(0.5 * ((1-beta)*p1[i] + (1+beta)*p2[i]))
		} else {
			c1[i], c2[i] = p1[i], p2[i]
		}
	}
	return c1, c2
}

// mutate applies polynomial mutation in place.
func (m *Method) mutate(x []float64, rng *rand.Rand) {
	for i := range x {
		if rng.Float64() >= m.PMut {
			continue
		}
		u := rng.Float64()
		var delta float64
		if u < 0.5 {
			delta = math.Pow(2*u, 1/(m.EtaM+1)) - 1
		} else {
			delta = 1 - math.Pow(2*(1-u), 1/(m.EtaM+1))
		}
		x[i] = clamp01(x[i] + delta)
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
