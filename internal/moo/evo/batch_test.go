package evo

import (
	"testing"

	"repro/internal/model"
	"repro/internal/model/dnn"
	"repro/internal/moo"
	"repro/internal/problem"
	"repro/internal/telemetry"
)

// TestPopulationUsesBatchedPath asserts the NSGA-II cohort evaluation rides
// the evaluator's matrix path when the objectives are batch-capable DNNs: the
// eval-batch point counter must account for every model-evaluated individual
// instead of staying at zero (which would mean the per-point fallback ran).
func TestPopulationUsesBatchedPath(t *testing.T) {
	tel := telemetry.New()
	lat := dnn.New(4, dnn.Config{Hidden: []int{8, 8}, Seed: 1})
	cost := dnn.New(4, dnn.Config{Hidden: []int{8, 8}, Seed: 2})
	p, err := problem.New([]model.Model{lat, cost}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev := problem.NewEvaluator(p, problem.Options{Telemetry: tel})
	m := &Method{Evaluator: ev, MinGens: 5, GensPerPoint: 1}
	sols, err := m.Run(moo.Options{Points: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) == 0 {
		t.Fatal("evo returned no solutions")
	}
	pts := tel.Metrics.Counter(telemetry.MetricEvalBatchPts).Value()
	batches := tel.Metrics.Counter(telemetry.MetricEvalBatches).Value()
	if batches == 0 {
		t.Fatal("no EvalBatch calls recorded")
	}
	if pts == 0 {
		t.Fatalf("matrix path never engaged: %d batches evaluated 0 points through it", batches)
	}
	// Every model pass of the run must have come from the batched path plus
	// memo hits — pts (points × k objectives) accounts for all evals.
	if evals := ev.Evals(); evals != pts*2 {
		t.Fatalf("evals %d != 2×batched points %d: some cohort points took the per-point loop", evals, pts)
	}
}
