package evo

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/model/analytic"
	"repro/internal/moo"
	"repro/internal/objective"
)

func method() *Method {
	lat, cost := analytic.PaperExample2D()
	return &Method{Objectives: []model.Model{lat, cost}, Pop: 30}
}

func TestRunProducesNonDominatedFront(t *testing.T) {
	front, err := method().Run(moo.Options{Points: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) < 5 {
		t.Fatalf("NSGA-II front has %d points", len(front))
	}
	for i := range front {
		for j := range front {
			if i != j && front[i].F.Dominates(front[j].F) {
				t.Fatal("dominated point in front")
			}
		}
	}
}

func TestConvergesTowardTrueFrontier(t *testing.T) {
	front, err := method().Run(moo.Options{Points: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]objective.Point, len(front))
	for i := range front {
		pts[i] = front[i].F
	}
	u := metrics.UncertainFraction(pts, objective.Point{100, 1}, objective.Point{2400, 24})
	if u > 0.5 {
		t.Fatalf("NSGA-II uncertainty %v, want < 0.5 after 80 generations", u)
	}
}

// TestInconsistencyAcrossBudgets reproduces Fig. 4(e): frontiers from
// different probe budgets (different effective run lengths and random
// streams) contradict each other, unlike PF's incremental frontiers.
func TestInconsistencyAcrossBudgets(t *testing.T) {
	utopia := objective.Point{100, 1}
	nadir := objective.Point{2400, 24}
	maxInconsistency := 0.0
	for _, seeds := range [][2]int64{{1, 2}, {3, 4}, {5, 6}} {
		m := method()
		f30, err := m.Run(moo.Options{Points: 30, Seed: seeds[0]})
		if err != nil {
			t.Fatal(err)
		}
		f40, err := m.Run(moo.Options{Points: 40, Seed: seeds[1]})
		if err != nil {
			t.Fatal(err)
		}
		p30 := make([]objective.Point, len(f30))
		for i := range f30 {
			p30[i] = f30[i].F
		}
		p40 := make([]objective.Point, len(f40))
		for i := range f40 {
			p40[i] = f40[i].F
		}
		if c := metrics.Consistency(p30, p40, utopia, nadir); c > maxInconsistency {
			maxInconsistency = c
		}
	}
	if maxInconsistency == 0 {
		t.Fatal("expected some inconsistency across independent Evo runs")
	}
}

func TestDeterministicForFixedSeed(t *testing.T) {
	a, _ := method().Run(moo.Options{Points: 10, Seed: 7})
	b, _ := method().Run(moo.Options{Points: 10, Seed: 7})
	if len(a) != len(b) {
		t.Fatalf("same seed, different front sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].F[0] != b[i].F[0] || a[i].F[1] != b[i].F[1] {
			t.Fatal("same seed, different frontier")
		}
	}
}

func TestProgressAndTimeBudget(t *testing.T) {
	calls := 0
	start := time.Now()
	_, err := method().Run(moo.Options{Points: 100000, Seed: 8, TimeBudget: 50 * time.Millisecond,
		OnProgress: func(time.Duration, []objective.Solution) { calls++ }})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("no progress callbacks")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("time budget ignored")
	}
}

func TestOddPopulationRoundedUp(t *testing.T) {
	lat, cost := analytic.PaperExample2D()
	m := &Method{Objectives: []model.Model{lat, cost}, Pop: 7}
	if _, err := m.Run(moo.Options{Points: 2, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	if m.Pop%2 != 0 {
		t.Fatalf("population not rounded to even: %d", m.Pop)
	}
}

func TestName(t *testing.T) {
	if method().Name() != "Evo" {
		t.Fatal("wrong name")
	}
}
