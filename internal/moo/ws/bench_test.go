package ws

import (
	"testing"

	"repro/internal/model"
	"repro/internal/model/analytic"
	"repro/internal/moo"
)

// BenchmarkWSRun measures one full Weighted Sum run — anchors plus one
// scalarized multi-start solve per weight vector — over the paper's 2D toy
// models. The per-iteration cost (one gradient per objective per Adam step)
// is the baselines' hot path; allocs/op tracks whether the inner loops reuse
// scratch or churn.
func BenchmarkWSRun(b *testing.B) {
	lat, cost := analytic.PaperExample2D()
	m := &Method{Objectives: []model.Model{lat, cost}, Starts: 4, Iters: 50}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		front, err := m.Run(moo.Options{Points: 5, Seed: 1})
		if err != nil || len(front) == 0 {
			b.Fatalf("run failed: %v (%d points)", err, len(front))
		}
	}
}
