package ws

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/model/analytic"
	"repro/internal/moo"
	"repro/internal/objective"
)

func method() *Method {
	lat, cost := analytic.PaperExample2D()
	return &Method{Objectives: []model.Model{lat, cost}, Starts: 4, Iters: 100}
}

func TestRunProducesNonDominatedSet(t *testing.T) {
	front, err := method().Run(moo.Options{Points: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty frontier")
	}
	for i := range front {
		for j := range front {
			if i != j && front[i].F.Dominates(front[j].F) {
				t.Fatal("dominated point in WS frontier")
			}
		}
	}
}

// TestPoorCoverage reproduces the paper's observation (Fig. 4(b)): on a
// non-convex (concave) Pareto frontier, every weighted sum is minimized at
// an endpoint, so WS collapses to a couple of points regardless of how many
// were requested.
func TestPoorCoverage(t *testing.T) {
	// Frontier {(t, 1−t²) : t ∈ [0,1]} is concave: interior points are
	// unreachable by any weight vector.
	f1 := model.Func{D: 1, F: func(x []float64) float64 { return x[0] }}
	f2 := model.Func{D: 1, F: func(x []float64) float64 { return 1 - x[0]*x[0] }}
	m := &Method{Objectives: []model.Model{f1, f2}, Starts: 6, Iters: 150}
	front, err := m.Run(moo.Options{Points: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) > 3 {
		t.Fatalf("WS found %d points on a concave frontier; expected collapse to the endpoints", len(front))
	}
}

func TestAnchorsIncluded(t *testing.T) {
	front, err := method().Run(moo.Options{Points: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The per-objective minima must be represented: some point near
	// latency 100 and some point near cost 1.
	bestLat, bestCost := 1e18, 1e18
	for _, p := range front {
		if p.F[0] < bestLat {
			bestLat = p.F[0]
		}
		if p.F[1] < bestCost {
			bestCost = p.F[1]
		}
	}
	if bestLat > 110 || bestCost > 1.5 {
		t.Fatalf("anchor points missing: bestLat=%v bestCost=%v", bestLat, bestCost)
	}
}

func TestProgressCallback(t *testing.T) {
	calls := 0
	var last []objective.Solution
	_, err := method().Run(moo.Options{Points: 5, Seed: 4, OnProgress: func(el time.Duration, f []objective.Solution) {
		calls++
		last = f
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls < 5 || len(last) == 0 {
		t.Fatalf("progress calls = %d, last frontier = %d points", calls, len(last))
	}
}

func TestTimeBudget(t *testing.T) {
	start := time.Now()
	_, err := method().Run(moo.Options{Points: 10000, Seed: 5, TimeBudget: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("time budget ignored")
	}
}

func TestWeightVectors(t *testing.T) {
	w2 := weightVectors(5, 2)
	if len(w2) != 5 {
		t.Fatalf("2D weights = %d", len(w2))
	}
	for _, w := range w2 {
		if len(w) != 2 || w[0]+w[1] < 0.999 || w[0]+w[1] > 1.001 {
			t.Fatalf("bad weight vector %v", w)
		}
	}
	w3 := weightVectors(10, 3)
	if len(w3) < 10 {
		t.Fatalf("3D weights = %d, want >= 10", len(w3))
	}
	for _, w := range w3 {
		sum := w[0] + w[1] + w[2]
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("3D weight %v does not sum to 1", w)
		}
	}
}

func TestUncertaintyReduction(t *testing.T) {
	front, err := method().Run(moo.Options{Points: 20, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]objective.Point, len(front))
	for i := range front {
		pts[i] = front[i].F
	}
	u := metrics.UncertainFraction(pts, objective.Point{100, 1}, objective.Point{2400, 24})
	if u > 0.9 {
		t.Fatalf("WS left %v uncertain; should reduce below 0.9", u)
	}
}

func TestName(t *testing.T) {
	if method().Name() != "WS" {
		t.Fatal("wrong name")
	}
}
