// Package ws implements the Weighted Sum baseline [19]: the MOO problem is
// scalarized into min Σ w_i·F̂_i for a sweep of weight vectors, each solved
// by multi-start gradient descent. As the paper observes (§III, Fig. 4(b)),
// WS is known to have poor coverage of the Pareto frontier — many weight
// vectors collapse onto the same solution, and points in non-convex regions
// of the frontier are unreachable — which this implementation reproduces.
package ws

import (
	"math/rand"
	"time"

	"repro/internal/model"
	"repro/internal/moo"
	"repro/internal/objective"
)

// Method is the Weighted Sum baseline.
type Method struct {
	Objectives []model.Model
	// Starts and Iters control the inner gradient-descent solver per weight
	// vector (defaults 8 and 150; WS needs generous effort per scalarized
	// problem, which is what makes it slow end-to-end).
	Starts, Iters int
	LR            float64
}

// Name implements moo.Method.
func (m *Method) Name() string { return "WS" }

func (m *Method) defaults() {
	if m.Starts == 0 {
		m.Starts = 8
	}
	if m.Iters == 0 {
		m.Iters = 150
	}
	if m.LR == 0 {
		m.LR = 0.05
	}
}

// weightVectors enumerates `n` weight vectors on the unit simplex: a uniform
// sweep in 2D and a triangular lattice in higher dimensions.
func weightVectors(n, k int) [][]float64 {
	var out [][]float64
	if k == 2 {
		for i := 0; i < n; i++ {
			w := float64(i) / float64(max(n-1, 1))
			out = append(out, []float64{w, 1 - w})
		}
		return out
	}
	// Simplex lattice: choose the smallest lattice degree h with
	// C(h+k-1, k-1) >= n, then emit the first n lattice points.
	h := 1
	for count(h, k) < n {
		h++
	}
	var rec func(prefix []int, left, dims int)
	rec = func(prefix []int, left, dims int) {
		if len(out) >= n {
			return
		}
		if dims == 1 {
			w := make([]float64, 0, k)
			for _, p := range prefix {
				w = append(w, float64(p)/float64(h))
			}
			w = append(w, float64(left)/float64(h))
			out = append(out, w)
			return
		}
		for v := 0; v <= left; v++ {
			rec(append(prefix, v), left-v, dims-1)
		}
	}
	rec(nil, h, k)
	return out
}

func count(h, k int) int {
	// C(h+k-1, k-1)
	n := 1
	for i := 1; i <= k-1; i++ {
		n = n * (h + i) / i
	}
	return n
}

// Run implements moo.Method: one scalarized solve per weight vector, with
// objectives normalized by the anchor-point box so weights are comparable.
func (m *Method) Run(opt moo.Options) ([]objective.Solution, error) {
	m.defaults()
	start := time.Now()
	rng := rand.New(rand.NewSource(opt.Seed))
	k := len(m.Objectives)
	anchorSols, utopia, nadir := moo.Anchors(m.Objectives, m.Starts, m.Iters, m.LR, rng)

	var found []objective.Solution
	found = append(found, anchorSols...)
	report := func() {
		if opt.OnProgress != nil {
			opt.OnProgress(time.Since(start), objective.Filter(found))
		}
	}
	report()

	for _, w := range weightVectors(opt.Points, k) {
		if opt.TimeBudget > 0 && time.Since(start) > opt.TimeBudget {
			break
		}
		scalar := weighted{objs: m.Objectives, w: w, utopia: utopia, nadir: nadir}
		x, _ := moo.MinimizeSingle(scalar, m.Starts, m.Iters, m.LR, rng)
		found = append(found, objective.Solution{F: moo.EvalAll(m.Objectives, x), X: x})
		report()
	}
	return objective.Filter(found), nil
}

// weighted is the scalarized objective Σ w_i·F̂_i with analytic gradients.
type weighted struct {
	objs          []model.Model
	w             []float64
	utopia, nadir objective.Point
}

func (s weighted) Dim() int { return s.objs[0].Dim() }

func (s weighted) scale(j int) float64 {
	span := s.nadir[j] - s.utopia[j]
	if span <= 0 {
		span = 1
	}
	return span
}

func (s weighted) Predict(x []float64) float64 {
	v := 0.0
	for j, m := range s.objs {
		v += s.w[j] * (m.Predict(x) - s.utopia[j]) / s.scale(j)
	}
	return v
}

func (s weighted) Gradient(x []float64) []float64 {
	out := make([]float64, s.Dim())
	for j, m := range s.objs {
		if s.w[j] == 0 {
			continue
		}
		g := model.EnsureGradient(m).Gradient(x)
		c := s.w[j] / s.scale(j)
		for d := range out {
			out[d] += c * g[d]
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
