// Package ws implements the Weighted Sum baseline [19]: the MOO problem is
// scalarized into min Σ w_i·F̂_i for a sweep of weight vectors, each solved
// by multi-start gradient descent. As the paper observes (§III, Fig. 4(b)),
// WS is known to have poor coverage of the Pareto frontier — many weight
// vectors collapse onto the same solution, and points in non-convex regions
// of the frontier are unreachable — which this implementation reproduces.
package ws

import (
	"math/rand"

	"repro/internal/model"
	"repro/internal/moo"
	"repro/internal/objective"
	"repro/internal/problem"
)

// Method is the Weighted Sum baseline.
type Method struct {
	Objectives []model.Model
	// Evaluator, when non-nil, is used instead of building one over
	// Objectives — injected by callers that share a memo cache and
	// evaluation counter across methods.
	Evaluator *problem.Evaluator
	// Starts and Iters control the inner gradient-descent solver per weight
	// vector (defaults 8 and 150; WS needs generous effort per scalarized
	// problem, which is what makes it slow end-to-end).
	Starts, Iters int
	LR            float64
}

// Name implements moo.Method.
func (m *Method) Name() string { return "WS" }

func (m *Method) defaults() {
	if m.Starts == 0 {
		m.Starts = 8
	}
	if m.Iters == 0 {
		m.Iters = 150
	}
	if m.LR == 0 {
		m.LR = 0.05
	}
}

// weightVectors enumerates `n` weight vectors on the unit simplex: a uniform
// sweep in 2D and a triangular lattice in higher dimensions.
func weightVectors(n, k int) [][]float64 {
	var out [][]float64
	if k == 2 {
		for i := 0; i < n; i++ {
			w := float64(i) / float64(max(n-1, 1))
			out = append(out, []float64{w, 1 - w})
		}
		return out
	}
	// Simplex lattice: choose the smallest lattice degree h with
	// C(h+k-1, k-1) >= n, then emit the first n lattice points.
	h := 1
	for count(h, k) < n {
		h++
	}
	var rec func(prefix []int, left, dims int)
	rec = func(prefix []int, left, dims int) {
		if len(out) >= n {
			return
		}
		if dims == 1 {
			w := make([]float64, 0, k)
			for _, p := range prefix {
				w = append(w, float64(p)/float64(h))
			}
			w = append(w, float64(left)/float64(h))
			out = append(out, w)
			return
		}
		for v := 0; v <= left; v++ {
			rec(append(prefix, v), left-v, dims-1)
		}
	}
	rec(nil, h, k)
	return out
}

func count(h, k int) int {
	// C(h+k-1, k-1)
	n := 1
	for i := 1; i <= k-1; i++ {
		n = n * (h + i) / i
	}
	return n
}

// Run implements moo.Method: one scalarized solve per weight vector, with
// objectives normalized by the anchor-point box so weights are comparable.
func (m *Method) Run(opt moo.Options) ([]objective.Solution, error) {
	m.defaults()
	tr := opt.Track().Named(m.Name())
	ev, err := moo.Evaluator(m.Evaluator, m.Objectives)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	k := ev.NumObjectives()
	anchorSols, utopia, nadir := moo.Anchors(ev, m.Starts, m.Iters, m.LR, rng)

	var found []objective.Solution
	found = append(found, anchorSols...)
	tr.Report(objective.Filter(found))

	scalar := &weighted{ev: ev, utopia: utopia, nadir: nadir, gbuf: make([]float64, ev.Dim())}
	for _, w := range weightVectors(opt.Points, k) {
		if tr.Expired() {
			break
		}
		scalar.w = w
		x, _ := moo.MinimizeSingle(scalar, m.Starts, m.Iters, m.LR, rng)
		found = append(found, objective.Solution{F: ev.Eval(x), X: x})
		tr.Report(objective.Filter(found))
	}
	return tr.Finish(objective.Filter(found)), nil
}

// weighted is the scalarized objective Σ w_i·F̂_i over the evaluator's fused
// per-objective path: one ValueGrad pass per objective yields both the
// scalarized value and its gradient, replacing the separate Predict +
// Gradient sweeps of the unfused implementation. gbuf is the per-objective
// gradient scratch (Run solves weight vectors sequentially, so one buffer
// suffices).
type weighted struct {
	ev            *problem.Evaluator
	w             []float64
	utopia, nadir objective.Point
	gbuf          []float64
}

func (s *weighted) Dim() int { return s.ev.Dim() }

func (s *weighted) scale(j int) float64 {
	span := s.nadir[j] - s.utopia[j]
	if span <= 0 {
		span = 1
	}
	return span
}

func (s *weighted) Predict(x []float64) float64 {
	v, _ := s.ValueGrad(x, nil)
	return v
}

func (s *weighted) Gradient(x []float64) []float64 {
	_, g := s.ValueGrad(x, nil)
	return g
}

// ValueGrad implements model.ValueGradienter: the scalarized value and
// gradient from one fused pass per objective.
func (s *weighted) ValueGrad(x, grad []float64) (float64, []float64) {
	out := model.GradBuf(grad, s.Dim())
	for d := range out {
		out[d] = 0
	}
	v := 0.0
	for j := range s.w {
		if s.w[j] == 0 {
			continue
		}
		fj, gj := s.ev.ObjValueGrad(j, x, s.gbuf)
		c := s.w[j] / s.scale(j)
		v += c * (fj - s.utopia[j])
		for d := range out {
			out[d] += c * gj[d]
		}
	}
	return v, out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
