// Package moo defines the common contract for the multi-objective
// optimization baselines the paper compares against (§VI-A): Weighted Sum
// (subpackage ws), Normalized Normal Constraints (nc), the NSGA-II
// evolutionary method (evo), and multi-objective Bayesian optimization
// (mobo, covering qEHVI- and PESM-style acquisitions). The Progressive
// Frontier algorithms live in internal/core and are adapted to this
// interface by the experiment harness.
//
// All methods evaluate objectives exclusively through a problem.Evaluator —
// the repository-wide evaluation seam — so they inherit the fused
// value+gradient hot path, batch evaluation, memoization, and a comparable
// evaluation count.
package moo

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/model"
	"repro/internal/objective"
	"repro/internal/problem"
	"repro/internal/telemetry"
)

// Options controls a baseline run.
type Options struct {
	// Points is the number of Pareto points requested (the paper's "probes").
	Points int
	// Seed drives all randomized components.
	Seed int64
	// TimeBudget optionally caps wall-clock time; zero means unlimited. The
	// budget is checked between units of work (a scalarized solve, a
	// sub-problem, a generation, an acquisition round) — the unit in flight
	// is never interrupted, so runs may overshoot by one unit.
	TimeBudget time.Duration
	// OnProgress, when non-nil, is invoked whenever the method's frontier
	// estimate changes, with the elapsed time and the current
	// dominance-filtered frontier. Every method additionally emits exactly
	// one final callback with the frontier it is about to return — also when
	// the time budget cut the run short — so observers always see the
	// terminal state.
	OnProgress func(elapsed time.Duration, frontier []objective.Solution)
	// Telemetry, when non-nil, records frontier-progress trace events and the
	// run's terminal summary through the shared Tracker, under RunID.
	Telemetry *telemetry.Telemetry
	// RunID labels emitted trace events; Track derives one when empty.
	RunID string
}

// Method approximates the Pareto frontier of a set of objective models over
// the normalized decision box [0,1]^D.
type Method interface {
	// Name identifies the method in experiment output ("WS", "NC", ...).
	Name() string
	// Run computes a frontier under the given options.
	Run(opt Options) ([]objective.Solution, error)
}

// Tracker is the shared TimeBudget/OnProgress/Telemetry plumbing of Options,
// implementing the contract documented there so the four baselines cannot
// drift apart. Obtain one per Run via Options.Track; instrumenting the
// Tracker instruments all four methods at once.
type Tracker struct {
	clock   problem.Clock
	cb      func(elapsed time.Duration, frontier []objective.Solution)
	tracer  *telemetry.Tracer
	runID   string
	label   string
	reports int
}

// Track starts the run's clock and returns its tracker.
func (o Options) Track() *Tracker {
	t := &Tracker{
		clock: problem.StartClock(o.TimeBudget),
		cb:    o.OnProgress,
		runID: o.RunID,
	}
	if o.Telemetry != nil {
		t.tracer = o.Telemetry.Trace
		if t.runID == "" {
			t.runID = o.Telemetry.NextRunID("moo")
		}
	}
	return t
}

// Named records the method's display name ("WS", "NC", ...) on trace events
// and returns the tracker, so Runs start with opt.Track().Named(m.Name()).
func (t *Tracker) Named(label string) *Tracker {
	t.label = label
	return t
}

// Expired reports whether the time budget is exhausted.
func (t *Tracker) Expired() bool { return t.clock.Expired() }

// Elapsed returns the wall-clock time since Run started.
func (t *Tracker) Elapsed() time.Duration { return t.clock.Elapsed() }

// Report emits a progress callback with the current frontier estimate, and —
// because frontier changes can be frequent — a verbose-level trace event.
func (t *Tracker) Report(frontier []objective.Solution) {
	t.reports++
	if t.cb != nil {
		t.cb(t.clock.Elapsed(), frontier)
	}
	if t.tracer.Enabled(telemetry.LevelVerbose) {
		t.tracer.Emit(telemetry.LevelVerbose, telemetry.Event{
			Run: t.runID, Scope: "moo", Name: "progress", Detail: t.label,
			Dur:   t.clock.Elapsed(),
			Attrs: map[string]float64{"frontier": float64(len(frontier))},
		})
	}
}

// Finish emits the mandatory final callback, a run-level trace event
// summarizing the run, and returns the frontier, so a Run can end with
// "return tr.Finish(front), nil".
func (t *Tracker) Finish(frontier []objective.Solution) []objective.Solution {
	t.Report(frontier)
	if t.tracer.Enabled(telemetry.LevelRun) {
		t.tracer.Emit(telemetry.LevelRun, telemetry.Event{
			Run: t.runID, Scope: "moo", Name: "run", Detail: t.label,
			Dur: t.clock.Elapsed(),
			Attrs: map[string]float64{
				"frontier": float64(len(frontier)),
				"reports":  float64(t.reports),
				"expired":  expiredAttr(t.clock.Expired()),
			},
		})
	}
	return frontier
}

func expiredAttr(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Evaluator returns ev when non-nil and otherwise builds a fresh evaluator
// over the models — the migration shim that lets Method structs accept an
// injected evaluator (sharing its memo cache and counters with the caller)
// while keeping plain model-list construction working.
func Evaluator(ev *problem.Evaluator, objs []model.Model) (*problem.Evaluator, error) {
	if ev != nil {
		return ev, nil
	}
	p, err := problem.New(objs, nil)
	if err != nil {
		return nil, err
	}
	return problem.NewEvaluator(p, problem.Options{}), nil
}

// MinimizeSingle runs multi-start Adam on one objective over [0,1]^D — the
// anchor-point subroutine shared by WS and NC (the individual minima that
// define the utopia geometry of both methods).
//
// Each iteration costs exactly one fused ValueGrad pass (§IV-B hot path);
// the value of every iterate comes for free with its gradient, so the best
// point seen anywhere on a trajectory — not just its endpoint — becomes the
// start's candidate. All per-iteration buffers are hoisted, so the inner
// loop does not allocate.
func MinimizeSingle(m model.Model, starts, iters int, lr float64, rng *rand.Rand) ([]float64, float64) {
	vg := model.EnsureValueGrad(m)
	dim := m.Dim()
	bestX := make([]float64, dim)
	bestF := math.Inf(1)
	x := make([]float64, dim)
	grad := make([]float64, dim)
	mA := make([]float64, dim)
	vA := make([]float64, dim)
	consider := func(f float64) {
		if f < bestF {
			bestF = f
			copy(bestX, x)
		}
	}
	for s := 0; s < starts; s++ {
		if s == 0 {
			for d := range x {
				x[d] = 0.5
			}
		} else {
			for d := range x {
				x[d] = rng.Float64()
			}
		}
		for d := range mA {
			mA[d] = 0
			vA[d] = 0
		}
		const b1, b2, eps = 0.9, 0.999, 1e-8
		for it := 1; it <= iters; it++ {
			f, g := vg.ValueGrad(x, grad)
			consider(f)
			t := float64(it)
			c1 := 1 - math.Pow(b1, t)
			c2 := 1 - math.Pow(b2, t)
			for d := range x {
				gv := g[d]
				mA[d] = b1*mA[d] + (1-b1)*gv
				vA[d] = b2*vA[d] + (1-b2)*gv*gv
				step := lr * (mA[d] / c1) / (math.Sqrt(vA[d]/c2) + eps)
				x[d] = clamp01(x[d] - step)
			}
		}
		f, _ := vg.ValueGrad(x, grad)
		consider(f)
	}
	return bestX, bestF
}

// Anchors computes the k per-objective minima and the resulting global
// Utopia/Nadir box over the anchor points, evaluating through ev.
func Anchors(ev *problem.Evaluator, starts, iters int, lr float64, rng *rand.Rand) (sols []objective.Solution, utopia, nadir objective.Point) {
	k := ev.NumObjectives()
	refs := make([]objective.Point, 0, k)
	for j := 0; j < k; j++ {
		x, _ := MinimizeSingle(ev.Objective(j), starts, iters, lr, rng)
		f := ev.Eval(x)
		sols = append(sols, objective.Solution{F: f, X: x})
		refs = append(refs, f)
	}
	utopia, nadir = objective.Bounds(refs)
	return sols, utopia, nadir
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
