// Package moo defines the common contract for the multi-objective
// optimization baselines the paper compares against (§VI-A): Weighted Sum
// (subpackage ws), Normalized Normal Constraints (nc), the NSGA-II
// evolutionary method (evo), and multi-objective Bayesian optimization
// (mobo, covering qEHVI- and PESM-style acquisitions). The Progressive
// Frontier algorithms live in internal/core and are adapted to this
// interface by the experiment harness.
package moo

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/model"
	"repro/internal/objective"
)

// Options controls a baseline run.
type Options struct {
	// Points is the number of Pareto points requested (the paper's "probes").
	Points int
	// Seed drives all randomized components.
	Seed int64
	// TimeBudget optionally caps wall-clock time; zero means unlimited.
	TimeBudget time.Duration
	// OnProgress, when non-nil, is invoked whenever the method's frontier
	// estimate changes, with the elapsed time and the current frontier.
	OnProgress func(elapsed time.Duration, frontier []objective.Solution)
}

// Method approximates the Pareto frontier of a set of objective models over
// the normalized decision box [0,1]^D.
type Method interface {
	// Name identifies the method in experiment output ("WS", "NC", ...).
	Name() string
	// Run computes a frontier under the given options.
	Run(opt Options) ([]objective.Solution, error)
}

// EvalAll evaluates every objective at x.
func EvalAll(objs []model.Model, x []float64) objective.Point {
	f := make(objective.Point, len(objs))
	for j, m := range objs {
		f[j] = m.Predict(x)
	}
	return f
}

// MinimizeSingle runs multi-start Adam on one objective over [0,1]^D — the
// anchor-point subroutine shared by WS and NC (the individual minima that
// define the utopia geometry of both methods).
func MinimizeSingle(m model.Model, starts, iters int, lr float64, rng *rand.Rand) ([]float64, float64) {
	g := model.EnsureGradient(m)
	dim := m.Dim()
	bestX := make([]float64, dim)
	bestF := math.Inf(1)
	for s := 0; s < starts; s++ {
		x := make([]float64, dim)
		if s == 0 {
			for d := range x {
				x[d] = 0.5
			}
		} else {
			for d := range x {
				x[d] = rng.Float64()
			}
		}
		mA := make([]float64, dim)
		vA := make([]float64, dim)
		const b1, b2, eps = 0.9, 0.999, 1e-8
		for it := 1; it <= iters; it++ {
			grad := g.Gradient(x)
			t := float64(it)
			for d := range x {
				gv := grad[d]
				mA[d] = b1*mA[d] + (1-b1)*gv
				vA[d] = b2*vA[d] + (1-b2)*gv*gv
				step := lr * (mA[d] / (1 - math.Pow(b1, t))) / (math.Sqrt(vA[d]/(1-math.Pow(b2, t))) + eps)
				x[d] = clamp01(x[d] - step)
			}
		}
		if f := m.Predict(x); f < bestF {
			bestF = f
			copy(bestX, x)
		}
	}
	return bestX, bestF
}

// Anchors computes the k per-objective minima and the resulting global
// Utopia/Nadir box over the anchor points.
func Anchors(objs []model.Model, starts, iters int, lr float64, rng *rand.Rand) (sols []objective.Solution, utopia, nadir objective.Point) {
	refs := make([]objective.Point, 0, len(objs))
	for _, m := range objs {
		x, _ := MinimizeSingle(m, starts, iters, lr, rng)
		f := EvalAll(objs, x)
		sols = append(sols, objective.Solution{F: f, X: x})
		refs = append(refs, f)
	}
	utopia, nadir = objective.Bounds(refs)
	return sols, utopia, nadir
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
