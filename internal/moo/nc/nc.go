// Package nc implements the Normalized Normal Constraint baseline [21]
// (Messac et al.): anchor points define the utopia hyperplane in the
// normalized objective space; evenly distributed points on that plane each
// spawn a constrained problem — minimize the last objective subject to
// normal-hyperplane inequality constraints — solved here by penalty-method
// gradient descent.
//
// As the paper notes (§III), NC uses a preset point count but often returns
// fewer Pareto points than requested (some sub-problems fail or produce
// dominated points that the final filter removes), and obtaining more points
// requires restarting the whole computation — both behaviours are preserved.
package nc

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/model"
	"repro/internal/moo"
	"repro/internal/objective"
)

// Method is the Normalized Normal Constraint baseline.
type Method struct {
	Objectives    []model.Model
	Starts, Iters int
	LR            float64
	// Penalty is the constraint-violation weight (default 50).
	Penalty float64
}

// Name implements moo.Method.
func (m *Method) Name() string { return "NC" }

func (m *Method) defaults() {
	if m.Starts == 0 {
		m.Starts = 8
	}
	if m.Iters == 0 {
		m.Iters = 150
	}
	if m.LR == 0 {
		m.LR = 0.05
	}
	if m.Penalty == 0 {
		m.Penalty = 50
	}
}

// Run implements moo.Method.
func (m *Method) Run(opt moo.Options) ([]objective.Solution, error) {
	m.defaults()
	start := time.Now()
	rng := rand.New(rand.NewSource(opt.Seed))
	k := len(m.Objectives)
	anchorSols, utopia, nadir := moo.Anchors(m.Objectives, m.Starts, m.Iters, m.LR, rng)

	// Normalized anchor points.
	anchors := make([]objective.Point, k)
	for i, s := range anchorSols {
		anchors[i] = objective.Normalize(s.F, utopia, nadir)
	}
	// Normal directions N_j = anchor_k − anchor_j, j = 1..k−1.
	normals := make([][]float64, 0, k-1)
	for j := 0; j < k-1; j++ {
		n := make([]float64, k)
		for d := 0; d < k; d++ {
			n[d] = anchors[k-1][d] - anchors[j][d]
		}
		normals = append(normals, n)
	}

	found := append([]objective.Solution(nil), anchorSols...)
	report := func() {
		if opt.OnProgress != nil {
			opt.OnProgress(time.Since(start), objective.Filter(found))
		}
	}
	report()

	for _, lambda := range planeWeights(opt.Points, k) {
		if opt.TimeBudget > 0 && time.Since(start) > opt.TimeBudget {
			break
		}
		// Point on the utopia hyperplane: Xp = Σ λ_i · anchor_i.
		xp := make(objective.Point, k)
		for i := 0; i < k; i++ {
			for d := 0; d < k; d++ {
				xp[d] += lambda[i] * anchors[i][d]
			}
		}
		if x, ok := m.solveSub(xp, normals, utopia, nadir, rng); ok {
			found = append(found, objective.Solution{F: moo.EvalAll(m.Objectives, x), X: x})
		}
		report()
	}
	return objective.Filter(found), nil
}

// planeWeights enumerates n convex-combination weights over the k anchors —
// even spacing in 2D, a simplex lattice in higher dimensions.
func planeWeights(n, k int) [][]float64 {
	var out [][]float64
	if k == 2 {
		for i := 0; i < n; i++ {
			a := float64(i) / float64(maxInt(n-1, 1))
			out = append(out, []float64{a, 1 - a})
		}
		return out
	}
	h := 1
	for simplexCount(h, k) < n {
		h++
	}
	var rec func(prefix []float64, left, dims int)
	rec = func(prefix []float64, left, dims int) {
		if len(out) >= n {
			return
		}
		if dims == 1 {
			w := append(append([]float64(nil), prefix...), float64(left)/float64(h))
			out = append(out, w)
			return
		}
		for v := 0; v <= left; v++ {
			rec(append(prefix, float64(v)/float64(h)), left-v, dims-1)
		}
	}
	rec(nil, h, k)
	return out
}

func simplexCount(h, k int) int {
	n := 1
	for i := 1; i <= k-1; i++ {
		n = n * (h + i) / i
	}
	return n
}

// solveSub minimizes F̄_k subject to N_j·(F̄ − Xp) ≤ 0 via Adam on a penalty
// loss. ok is false when the constraints remain violated at every start.
func (m *Method) solveSub(xp objective.Point, normals [][]float64, utopia, nadir objective.Point, rng *rand.Rand) ([]float64, bool) {
	k := len(m.Objectives)
	dim := m.Objectives[0].Dim()
	grads := make([]model.Gradienter, k)
	for i, o := range m.Objectives {
		grads[i] = model.EnsureGradient(o)
	}
	span := func(j int) float64 {
		s := nadir[j] - utopia[j]
		if s <= 0 {
			return 1
		}
		return s
	}
	normF := func(x []float64) objective.Point {
		f := moo.EvalAll(m.Objectives, x)
		return objective.Normalize(f, utopia, nadir)
	}

	var bestX []float64
	bestVal := math.Inf(1)
	for s := 0; s < m.Starts; s++ {
		x := make([]float64, dim)
		if s == 0 {
			for d := range x {
				x[d] = 0.5
			}
		} else {
			for d := range x {
				x[d] = rng.Float64()
			}
		}
		mA := make([]float64, dim)
		vA := make([]float64, dim)
		const b1, b2, eps = 0.9, 0.999, 1e-8
		for it := 1; it <= m.Iters; it++ {
			fb := normF(x)
			// dL/dF̄_j coefficients.
			coeff := make([]float64, k)
			coeff[k-1] = 1 // target: minimize normalized last objective
			for _, n := range normals {
				viol := 0.0
				for d := 0; d < k; d++ {
					viol += n[d] * (fb[d] - xp[d])
				}
				if viol > 0 {
					for d := 0; d < k; d++ {
						coeff[d] += 2 * m.Penalty * viol * n[d]
					}
				}
			}
			grad := make([]float64, dim)
			for j := 0; j < k; j++ {
				if coeff[j] == 0 {
					continue
				}
				g := grads[j].Gradient(x)
				c := coeff[j] / span(j)
				for d := range grad {
					grad[d] += c * g[d]
				}
			}
			t := float64(it)
			for d := range x {
				gv := grad[d]
				mA[d] = b1*mA[d] + (1-b1)*gv
				vA[d] = b2*vA[d] + (1-b2)*gv*gv
				step := m.LR * (mA[d] / (1 - math.Pow(b1, t))) / (math.Sqrt(vA[d]/(1-math.Pow(b2, t))) + eps)
				x[d] = clamp01(x[d] - step)
			}
		}
		// Accept only constraint-satisfying finishes.
		fb := normF(x)
		feasible := true
		for _, n := range normals {
			viol := 0.0
			for d := 0; d < k; d++ {
				viol += n[d] * (fb[d] - xp[d])
			}
			if viol > 1e-3 {
				feasible = false
				break
			}
		}
		if feasible && fb[k-1] < bestVal {
			bestVal = fb[k-1]
			bestX = append([]float64(nil), x...)
		}
	}
	return bestX, bestX != nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
