// Package nc implements the Normalized Normal Constraint baseline [21]
// (Messac et al.): anchor points define the utopia hyperplane in the
// normalized objective space; evenly distributed points on that plane each
// spawn a constrained problem — minimize the last objective subject to
// normal-hyperplane inequality constraints — solved here by penalty-method
// gradient descent.
//
// As the paper notes (§III), NC uses a preset point count but often returns
// fewer Pareto points than requested (some sub-problems fail or produce
// dominated points that the final filter removes), and obtaining more points
// requires restarting the whole computation — both behaviours are preserved.
package nc

import (
	"math"
	"math/rand"

	"repro/internal/model"
	"repro/internal/moo"
	"repro/internal/objective"
	"repro/internal/problem"
)

// Method is the Normalized Normal Constraint baseline.
type Method struct {
	Objectives []model.Model
	// Evaluator, when non-nil, is used instead of building one over
	// Objectives — injected by callers that share a memo cache and
	// evaluation counter across methods.
	Evaluator     *problem.Evaluator
	Starts, Iters int
	LR            float64
	// Penalty is the constraint-violation weight (default 50).
	Penalty float64
}

// Name implements moo.Method.
func (m *Method) Name() string { return "NC" }

func (m *Method) defaults() {
	if m.Starts == 0 {
		m.Starts = 8
	}
	if m.Iters == 0 {
		m.Iters = 150
	}
	if m.LR == 0 {
		m.LR = 0.05
	}
	if m.Penalty == 0 {
		m.Penalty = 50
	}
}

// Run implements moo.Method.
func (m *Method) Run(opt moo.Options) ([]objective.Solution, error) {
	m.defaults()
	tr := opt.Track().Named(m.Name())
	ev, err := moo.Evaluator(m.Evaluator, m.Objectives)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	k := ev.NumObjectives()
	anchorSols, utopia, nadir := moo.Anchors(ev, m.Starts, m.Iters, m.LR, rng)

	// Normalized anchor points.
	anchors := make([]objective.Point, k)
	for i, s := range anchorSols {
		anchors[i] = objective.Normalize(s.F, utopia, nadir)
	}
	// Normal directions N_j = anchor_k − anchor_j, j = 1..k−1.
	normals := make([][]float64, 0, k-1)
	for j := 0; j < k-1; j++ {
		n := make([]float64, k)
		for d := 0; d < k; d++ {
			n[d] = anchors[k-1][d] - anchors[j][d]
		}
		normals = append(normals, n)
	}

	found := append([]objective.Solution(nil), anchorSols...)
	tr.Report(objective.Filter(found))

	sub := m.newSubSolver(ev, normals, utopia, nadir)
	for _, lambda := range planeWeights(opt.Points, k) {
		if tr.Expired() {
			break
		}
		// Point on the utopia hyperplane: Xp = Σ λ_i · anchor_i.
		xp := make(objective.Point, k)
		for i := 0; i < k; i++ {
			for d := 0; d < k; d++ {
				xp[d] += lambda[i] * anchors[i][d]
			}
		}
		if x, ok := sub.solve(xp, rng); ok {
			found = append(found, objective.Solution{F: ev.Eval(x), X: x})
		}
		tr.Report(objective.Filter(found))
	}
	return tr.Finish(objective.Filter(found)), nil
}

// planeWeights enumerates n convex-combination weights over the k anchors —
// even spacing in 2D, a simplex lattice in higher dimensions.
func planeWeights(n, k int) [][]float64 {
	var out [][]float64
	if k == 2 {
		for i := 0; i < n; i++ {
			a := float64(i) / float64(maxInt(n-1, 1))
			out = append(out, []float64{a, 1 - a})
		}
		return out
	}
	h := 1
	for simplexCount(h, k) < n {
		h++
	}
	var rec func(prefix []float64, left, dims int)
	rec = func(prefix []float64, left, dims int) {
		if len(out) >= n {
			return
		}
		if dims == 1 {
			w := append(append([]float64(nil), prefix...), float64(left)/float64(h))
			out = append(out, w)
			return
		}
		for v := 0; v <= left; v++ {
			rec(append(prefix, float64(v)/float64(h)), left-v, dims-1)
		}
	}
	rec(nil, h, k)
	return out
}

func simplexCount(h, k int) int {
	n := 1
	for i := 1; i <= k-1; i++ {
		n = n * (h + i) / i
	}
	return n
}

// subSolver holds the shared geometry and reusable buffers for the
// penalty-method sub-problems. Each solve iteration costs one fused
// ValueGrad pass per objective — value and gradient together — instead of
// the separate EvalAll + Gradient sweeps of the unfused implementation, and
// all per-iteration state lives in hoisted buffers, so the inner loop does
// not allocate.
type subSolver struct {
	m             *Method
	ev            *problem.Evaluator
	normals       [][]float64
	utopia, nadir objective.Point
	// Hoisted scratch, reused across iterations and starts.
	x, mA, vA  []float64
	grad, gbuf []float64
	f, fb      objective.Point
	fgrads     [][]float64 // per-objective input gradients at the iterate
	coeff      []float64
}

func (m *Method) newSubSolver(ev *problem.Evaluator, normals [][]float64, utopia, nadir objective.Point) *subSolver {
	k := ev.NumObjectives()
	dim := ev.Dim()
	s := &subSolver{
		m: m, ev: ev, normals: normals, utopia: utopia, nadir: nadir,
		x: make([]float64, dim), mA: make([]float64, dim), vA: make([]float64, dim),
		grad: make([]float64, dim), gbuf: make([]float64, dim),
		f: make(objective.Point, k), fb: make(objective.Point, k),
		coeff: make([]float64, k),
	}
	s.fgrads = make([][]float64, k)
	for j := range s.fgrads {
		s.fgrads[j] = make([]float64, dim)
	}
	return s
}

func (s *subSolver) span(j int) float64 {
	sp := s.nadir[j] - s.utopia[j]
	if sp <= 0 {
		return 1
	}
	return sp
}

// normalize writes the [utopia, nadir]-normalized form of s.f into s.fb.
func (s *subSolver) normalize() {
	for j := range s.f {
		s.fb[j] = (s.f[j] - s.utopia[j]) / s.span(j)
	}
}

// solve minimizes F̄_k subject to N_j·(F̄ − Xp) ≤ 0 via Adam on a penalty
// loss. ok is false when the constraints remain violated at every start.
func (s *subSolver) solve(xp objective.Point, rng *rand.Rand) ([]float64, bool) {
	k := s.ev.NumObjectives()
	dim := s.ev.Dim()
	var bestX []float64
	bestVal := math.Inf(1)
	for st := 0; st < s.m.Starts; st++ {
		if st == 0 {
			for d := range s.x {
				s.x[d] = 0.5
			}
		} else {
			for d := range s.x {
				s.x[d] = rng.Float64()
			}
		}
		for d := 0; d < dim; d++ {
			s.mA[d] = 0
			s.vA[d] = 0
		}
		const b1, b2, eps = 0.9, 0.999, 1e-8
		for it := 1; it <= s.m.Iters; it++ {
			// One fused pass per objective: values for the constraint terms,
			// gradients for the descent direction.
			for j := 0; j < k; j++ {
				s.f[j], _ = s.ev.ObjValueGrad(j, s.x, s.fgrads[j])
			}
			s.normalize()
			// dL/dF̄_j coefficients.
			for j := range s.coeff {
				s.coeff[j] = 0
			}
			s.coeff[k-1] = 1 // target: minimize normalized last objective
			for _, n := range s.normals {
				viol := 0.0
				for d := 0; d < k; d++ {
					viol += n[d] * (s.fb[d] - xp[d])
				}
				if viol > 0 {
					for d := 0; d < k; d++ {
						s.coeff[d] += 2 * s.m.Penalty * viol * n[d]
					}
				}
			}
			for d := range s.grad {
				s.grad[d] = 0
			}
			for j := 0; j < k; j++ {
				if s.coeff[j] == 0 {
					continue
				}
				c := s.coeff[j] / s.span(j)
				g := s.fgrads[j]
				for d := range s.grad {
					s.grad[d] += c * g[d]
				}
			}
			t := float64(it)
			c1 := 1 - math.Pow(b1, t)
			c2 := 1 - math.Pow(b2, t)
			for d := range s.x {
				gv := s.grad[d]
				s.mA[d] = b1*s.mA[d] + (1-b1)*gv
				s.vA[d] = b2*s.vA[d] + (1-b2)*gv*gv
				step := s.m.LR * (s.mA[d] / c1) / (math.Sqrt(s.vA[d]/c2) + eps)
				s.x[d] = clamp01(s.x[d] - step)
			}
		}
		// Accept only constraint-satisfying finishes.
		s.ev.EvalInto(s.x, s.f)
		s.normalize()
		feasible := true
		for _, n := range s.normals {
			viol := 0.0
			for d := 0; d < k; d++ {
				viol += n[d] * (s.fb[d] - xp[d])
			}
			if viol > 1e-3 {
				feasible = false
				break
			}
		}
		if feasible && s.fb[k-1] < bestVal {
			bestVal = s.fb[k-1]
			bestX = append(bestX[:0], s.x...)
		}
	}
	if bestX == nil {
		return nil, false
	}
	return append([]float64(nil), bestX...), true
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
