package nc

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/model/analytic"
	"repro/internal/moo"
	"repro/internal/objective"
)

func method() *Method {
	lat, cost := analytic.PaperExample2D()
	return &Method{Objectives: []model.Model{lat, cost}, Starts: 4, Iters: 100}
}

func TestRunProducesNonDominatedSet(t *testing.T) {
	front, err := method().Run(moo.Options{Points: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) < 3 {
		t.Fatalf("NC frontier has %d points", len(front))
	}
	for i := range front {
		for j := range front {
			if i != j && front[i].F.Dominates(front[j].F) {
				t.Fatal("dominated point in NC frontier")
			}
		}
	}
}

// TestFewerPointsThanRequested checks the paper's §III observation: NC uses
// a preset point count but often returns fewer points than requested.
func TestFewerPointsThanRequested(t *testing.T) {
	front, err := method().Run(moo.Options{Points: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) > 20 {
		t.Fatalf("NC returned more points (%d) than requested+anchors", len(front))
	}
}

func TestBetterCoverageThanWS(t *testing.T) {
	// NC's hallmark vs WS: more even spread. Verify it reduces uncertainty
	// at least moderately.
	front, err := method().Run(moo.Options{Points: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]objective.Point, len(front))
	for i := range front {
		pts[i] = front[i].F
	}
	u := metrics.UncertainFraction(pts, objective.Point{100, 1}, objective.Point{2400, 24})
	if u > 0.85 {
		t.Fatalf("NC uncertainty %v too high", u)
	}
}

func TestProgressAndTimeBudget(t *testing.T) {
	calls := 0
	start := time.Now()
	_, err := method().Run(moo.Options{Points: 10000, Seed: 4, TimeBudget: 50 * time.Millisecond,
		OnProgress: func(time.Duration, []objective.Solution) { calls++ }})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("no progress callbacks")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("time budget ignored")
	}
}

func TestPlaneWeights3D(t *testing.T) {
	ws := planeWeights(12, 3)
	if len(ws) < 12 {
		t.Fatalf("3D plane weights = %d", len(ws))
	}
	for _, w := range ws {
		sum := 0.0
		for _, v := range w {
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("weights %v do not sum to 1", w)
		}
	}
}

func TestName(t *testing.T) {
	if method().Name() != "NC" {
		t.Fatal("wrong name")
	}
}
