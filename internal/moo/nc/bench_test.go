package nc

import (
	"testing"

	"repro/internal/model"
	"repro/internal/model/analytic"
	"repro/internal/moo"
)

// BenchmarkNCRun measures one full Normalized Normal Constraint run — anchors
// plus one penalty-method sub-problem per plane point — over the paper's 2D
// toy models. Each sub-problem iteration needs every objective's value and
// gradient, so this benchmark tracks both the fused-evaluation win and the
// inner-loop allocation discipline.
func BenchmarkNCRun(b *testing.B) {
	lat, cost := analytic.PaperExample2D()
	m := &Method{Objectives: []model.Model{lat, cost}, Starts: 4, Iters: 50}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		front, err := m.Run(moo.Options{Points: 5, Seed: 1})
		if err != nil || len(front) == 0 {
			b.Fatalf("run failed: %v (%d points)", err, len(front))
		}
	}
}
