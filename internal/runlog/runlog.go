// Package runlog is the durable run registry of the serving layer: every
// /optimize call is captured end to end — the request, the resolved variable
// space, the returned frontier, frontier-quality metrics (hypervolume,
// coverage, consistency against the previous run of the same workload,
// uncertain-space fraction), evaluation counters and the telemetry trace run
// ID — and appended as one JSON line to a size-bounded, rotated JSONL file.
//
// The paper evaluates UDAO on frontier *quality* across incremental runs
// (§VI, Expt-1/2), and the online-tuning follow-ups to this line of work rest
// on a persistent history of tuning runs and their measured outcomes. The
// registry is that history layer: an in-memory index (by run ID, workload and
// time) over an append-only log that survives process restarts, including a
// half-written final record (the log is repaired to the last complete line on
// reopen).
//
// Performance contract: Append computes quality metrics and updates the index
// synchronously (cheap: a 2D sweep or one bounded Monte Carlo pass over the
// frontier) but hands the disk write to a buffered background worker, so the
// solve hot path never waits on I/O.
package runlog

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/objective"
)

// QualityUnknown is the sentinel stored for a quality measure that could not
// be computed (degenerate objective box, dimension mismatch against the
// previous run). JSON cannot carry NaN, so the registry maps NaN/Inf to it.
const QualityUnknown = -1

// FrontierPoint is one Pareto point of a recorded run. F is the
// minimization-oriented objective vector (the space all quality metrics are
// computed in); X is the encoded configuration achieving it.
type FrontierPoint struct {
	F []float64 `json:"f"`
	X []float64 `json:"x,omitempty"`
}

// SpaceInfo summarizes the resolved variable space of a run.
type SpaceInfo struct {
	Vars []string `json:"vars,omitempty"`
	Dim  int      `json:"dim"`
}

// StageInfo summarizes one stage of a pipeline run: the stage's name within
// the composite space, the workload whose models served it, and its sub-space
// shape.
type StageInfo struct {
	Name     string   `json:"name"`
	Workload string   `json:"workload,omitempty"`
	Vars     []string `json:"vars,omitempty"`
	Dim      int      `json:"dim"`
}

// Quality holds the frontier-quality metrics of one run, computed by the
// registry at Append time via internal/metrics. Consistency and
// HypervolumeDelta compare against the previous recorded run of the same
// workload with the same objective set (PrevRunID), measured in the
// [utopia, nadir] box spanned by both frontiers together. A value of
// QualityUnknown (-1) means the measure could not be computed.
type Quality struct {
	Hypervolume      float64 `json:"hypervolume"`
	Coverage         int     `json:"coverage"`
	Consistency      float64 `json:"consistency"`
	UncertainFrac    float64 `json:"uncertain_frac"`
	HypervolumeDelta float64 `json:"hypervolume_delta"`
	PrevRunID        string  `json:"prev_run_id,omitempty"`
}

// ExpandStep is one incremental Expand call of a run's Progressive Frontier
// computation (the §IV-A incremental mode), mirrored from core.Run's history.
type ExpandStep struct {
	Probes      int `json:"probes"`
	TotalProbes int `json:"total_probes"`
	Frontier    int `json:"frontier"`
	// Hypervolume after this step, in the box of every plan probed so far
	// (QualityUnknown while the box is degenerate).
	Hypervolume   float64 `json:"hypervolume"`
	UncertainFrac float64 `json:"uncertain_frac"`
	ElapsedSec    float64 `json:"elapsed_sec"`
}

// Record is one registry entry — everything needed to reconstruct what a
// single /optimize call was asked, what it answered, and how good the answer
// was. ID is assigned by the registry ("run-000001", monotonic across
// restarts); TraceRunID joins the record to the telemetry trace sink.
type Record struct {
	ID         string    `json:"id"`
	Time       time.Time `json:"time"`
	Workload   string    `json:"workload"`
	Objectives []string  `json:"objectives"`
	Weights    []float64 `json:"weights,omitempty"`
	Probes     int       `json:"probes"`
	Space      SpaceInfo `json:"space"`

	// Stages describes the pipeline structure of a stage-wise run (nil for
	// flat runs); Space then describes the concatenated composite space.
	Stages []StageInfo `json:"stages,omitempty"`
	// SharedKnobs is the request's shared-knob list for stage-wise runs —
	// together with Workload, Objectives and the stage workloads it lets the
	// serving cache rebuild the exact request key at warm-up.
	SharedKnobs []string `json:"shared_knobs,omitempty"`

	Frontier    []FrontierPoint    `json:"frontier"`
	Recommended map[string]float64 `json:"recommended,omitempty"`
	Objective   map[string]float64 `json:"objective_values,omitempty"`
	// StageRecommended is the per-stage view of the recommended configuration
	// for pipeline runs: StageRecommended[stage][knob], shared knobs repeated
	// in every stage they tie.
	StageRecommended map[string]map[string]float64 `json:"stage_recommended,omitempty"`

	// PredictedStd is the predictive standard deviation of each objective's
	// model at the recommended configuration (absent for exact objectives) —
	// what the calibration ledger judges uncertainty-interval coverage
	// against once the actual outcome is observed.
	PredictedStd map[string]float64 `json:"predicted_std,omitempty"`

	// Served says how the serving layer satisfied the request: "hit" (cached
	// frontier), "solve" (built and solved), "expand" (cached run resumed) or
	// "coalesced" (shared another request's in-flight solve) — distinguishes
	// cached from fresh recommendations in the ledger and in GET /runs.
	Served string `json:"served,omitempty"`

	Quality Quality `json:"quality"`

	Evals      uint64       `json:"evals"`
	MemoHits   uint64       `json:"memo_hits"`
	MemoMisses uint64       `json:"memo_misses"`
	SolveSec   float64      `json:"solve_sec"`
	Expands    []ExpandStep `json:"expands,omitempty"`

	TraceRunID string `json:"trace_run_id,omitempty"`

	// RootSpan is the span ID of this request's root span. Cached optimizers
	// keep one trace run ID across many requests; the root span ID is what
	// isolates this record's subtree in the shared event stream (span IDs are
	// process-unique and strictly increasing).
	RootSpan uint64 `json:"root_span,omitempty"`

	// PhaseBreakdown maps phase labels ("service", "pf", "mogd", "eval",
	// "model", "stage:<name>") to per-phase self time in seconds, computed
	// from the request's span subtree. Self times sum to approximately
	// SolveSec; absent when tracing was off for the run.
	PhaseBreakdown map[string]float64 `json:"phase_breakdown,omitempty"`
}

// Options tunes a registry.
type Options struct {
	// MaxBytes bounds the active JSONL file; on overflow it rotates to
	// path.1 … path.Keep (<= 0 uses DefaultMaxBytes).
	MaxBytes int64
	// Keep is the number of rotated files retained (<= 0 uses DefaultKeep).
	Keep int
	// Buffer is the async write queue depth (<= 0 uses 256). A full queue
	// makes Append block until the worker drains — backpressure, not loss.
	Buffer int
	// Now is a test hook for record timestamps (nil uses time.Now).
	Now func() time.Time
}

// Registry is the durable run registry: an append-only rotated JSONL file
// plus an in-memory index over every complete record. Safe for concurrent
// use.
type Registry struct {
	path string
	now  func() time.Time

	mu         sync.RWMutex
	byID       map[string]*Record
	order      []*Record            // append order (time order for live appends)
	byWorkload map[string][]*Record // same order, split per workload
	seq        uint64

	file    *RotatingFile
	ch      chan []byte
	pending sync.WaitGroup
	done    chan struct{}
	lifeMu  sync.RWMutex // guards closed against in-flight Appends
	closed  bool
	lastErr atomic.Value // error
}

// Open loads the registry at path (rotated files oldest-first, then the
// active file), indexing only complete records, repairs a truncated final
// line by truncating the active file to its last complete record, and starts
// the background writer.
func Open(path string, opts Options) (*Registry, error) {
	r := &Registry{
		path:       path,
		now:        opts.Now,
		byID:       map[string]*Record{},
		byWorkload: map[string][]*Record{},
		done:       make(chan struct{}),
	}
	if r.now == nil {
		r.now = time.Now
	}
	keep := opts.Keep
	if keep <= 0 {
		keep = DefaultKeep
	}
	// Oldest rotated file first so the in-memory order matches append order.
	for i := keep; i >= 1; i-- {
		recs, _, err := readRecords(RotatedPath(path, i))
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
		r.indexAll(recs)
	}
	recs, complete, err := readRecords(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	r.indexAll(recs)
	if err == nil {
		// Repair a half-written final record: without this, the next append
		// would concatenate onto the partial line and corrupt both records.
		if st, serr := os.Stat(path); serr == nil && st.Size() > complete {
			if terr := os.Truncate(path, complete); terr != nil {
				return nil, fmt.Errorf("runlog: repairing %s: %w", path, terr)
			}
		}
	}
	f, err := OpenRotating(path, opts.MaxBytes, opts.Keep)
	if err != nil {
		return nil, err
	}
	r.file = f
	buf := opts.Buffer
	if buf <= 0 {
		buf = 256
	}
	r.ch = make(chan []byte, buf)
	go r.writer()
	return r, nil
}

// readRecords parses the JSONL file at path, returning the complete records
// and the byte offset just past the last complete line. Unparseable interior
// lines are skipped (not indexed); a missing trailing newline or a partial
// final line leaves that tail out of the completed offset.
func readRecords(path string) (recs []Record, complete int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	if st, serr := f.Stat(); serr != nil || !st.Mode().IsRegular() {
		// A directory or special file squatting on the path holds no records;
		// it will surface as a write error when rotation reaches it.
		return nil, 0, nil
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	var offset int64
	for sc.Scan() {
		line := sc.Bytes()
		lineLen := int64(len(line)) + 1 // +1 for the newline Scan strips
		// A final line without a trailing newline is indistinguishable from
		// a complete one via Scanner alone; detect it by comparing offsets
		// against the file size afterwards.
		var rec Record
		if jerr := json.Unmarshal(line, &rec); jerr == nil && rec.ID != "" {
			if offset+lineLen <= fileSize(f) {
				recs = append(recs, rec)
				complete = offset + lineLen
			}
		}
		offset += lineLen
	}
	if serr := sc.Err(); serr != nil {
		return recs, complete, serr
	}
	return recs, complete, nil
}

func fileSize(f *os.File) int64 {
	st, err := f.Stat()
	if err != nil {
		return 0
	}
	return st.Size()
}

// indexAll inserts loaded records, keeping seq past the largest numeric ID.
func (r *Registry) indexAll(recs []Record) {
	for i := range recs {
		rec := recs[i]
		if _, dup := r.byID[rec.ID]; dup {
			continue
		}
		r.insertLocked(&rec)
		var n uint64
		if _, err := fmt.Sscanf(rec.ID, "run-%d", &n); err == nil && n > r.seq {
			r.seq = n
		}
	}
}

func (r *Registry) insertLocked(rec *Record) {
	r.byID[rec.ID] = rec
	r.order = append(r.order, rec)
	r.byWorkload[rec.Workload] = append(r.byWorkload[rec.Workload], rec)
}

// Append assigns an ID and timestamp (if unset), computes the quality block
// against the previous run of the same workload, indexes the record, and
// queues the disk write. The returned record carries the assigned ID and
// computed quality. Disk errors surface asynchronously via Err.
func (r *Registry) Append(rec Record) (Record, error) {
	r.lifeMu.RLock()
	defer r.lifeMu.RUnlock()
	if r.closed {
		return rec, errors.New("runlog: registry closed")
	}
	r.mu.Lock()
	if rec.Time.IsZero() {
		rec.Time = r.now()
	}
	if rec.ID == "" {
		r.seq++
		rec.ID = fmt.Sprintf("run-%06d", r.seq)
	}
	r.computeQualityLocked(&rec)
	for i := range rec.Expands {
		rec.Expands[i].Hypervolume = sanitize(rec.Expands[i].Hypervolume)
		rec.Expands[i].UncertainFrac = sanitize(rec.Expands[i].UncertainFrac)
	}
	stored := rec
	r.insertLocked(&stored)
	r.mu.Unlock()

	line, err := json.Marshal(&rec)
	if err != nil {
		return rec, fmt.Errorf("runlog: encoding record %s: %w", rec.ID, err)
	}
	line = append(line, '\n')
	r.pending.Add(1)
	// A full queue blocks rather than drops — the registry is the system of
	// record, and the worker keeps draining, so this is backpressure only.
	r.ch <- line
	return rec, nil
}

// writer drains queued lines to the rotated file.
func (r *Registry) writer() {
	defer close(r.done)
	for line := range r.ch {
		if _, err := r.file.Write(line); err != nil {
			r.lastErr.Store(err)
		}
		r.pending.Done()
	}
}

// computeQualityLocked fills rec.Quality from the frontier and the previous
// record of the same workload+objectives. All measures are taken in the
// [utopia, nadir] box spanned by the union of both frontiers, so consecutive
// runs are compared on equal footing.
func (r *Registry) computeQualityLocked(rec *Record) {
	pts := frontierPoints(rec.Frontier)
	prev := r.prevComparableLocked(rec)
	all := pts
	var prevPts []objective.Point
	if prev != nil {
		prevPts = frontierPoints(prev.Frontier)
		all = append(append([]objective.Point{}, pts...), prevPts...)
	}
	q := &rec.Quality
	q.Hypervolume, q.Coverage, q.Consistency, q.HypervolumeDelta = QualityUnknown, 0, 0, 0
	if len(all) == 0 {
		return
	}
	utopia, nadir := objective.Bounds(all)
	q.Hypervolume = sanitize(metrics.Hypervolume(pts, utopia, nadir))
	q.Coverage = metrics.Coverage(pts, utopia, nadir)
	if prev != nil {
		q.PrevRunID = prev.ID
		q.Consistency = sanitize(metrics.Consistency(prevPts, pts, utopia, nadir))
		prevHV := metrics.Hypervolume(prevPts, utopia, nadir)
		if hv := q.Hypervolume; hv != QualityUnknown && !math.IsNaN(prevHV) {
			q.HypervolumeDelta = hv - prevHV
		} else {
			q.HypervolumeDelta = QualityUnknown
		}
	}
	q.UncertainFrac = sanitize(q.UncertainFrac)
}

// prevComparableLocked returns the latest indexed record of the same
// workload with the same objective set and frontier dimensionality.
func (r *Registry) prevComparableLocked(rec *Record) *Record {
	hist := r.byWorkload[rec.Workload]
	for i := len(hist) - 1; i >= 0; i-- {
		p := hist[i]
		if sameObjectives(p.Objectives, rec.Objectives) {
			return p
		}
	}
	return nil
}

func sameObjectives(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func frontierPoints(fps []FrontierPoint) []objective.Point {
	out := make([]objective.Point, 0, len(fps))
	for _, fp := range fps {
		if len(fp.F) > 0 {
			out = append(out, objective.Point(fp.F))
		}
	}
	return out
}

// sanitize maps NaN/Inf (the metrics package's degenerate-box sentinels) to
// QualityUnknown so records always marshal to valid JSON.
func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return QualityUnknown
	}
	return v
}

// Get returns the record with the given ID.
func (r *Registry) Get(id string) (Record, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rec, ok := r.byID[id]
	if !ok {
		return Record{}, false
	}
	return *rec, true
}

// List returns records in append order, optionally filtered to a workload
// and to Time >= since, keeping only the most recent `limit` (limit <= 0
// returns all matches).
func (r *Registry) List(workload string, since time.Time, limit int) []Record {
	r.mu.RLock()
	src := r.order
	if workload != "" {
		src = r.byWorkload[workload]
	}
	out := make([]Record, 0, len(src))
	for _, rec := range src {
		if !since.IsZero() && rec.Time.Before(since) {
			continue
		}
		out = append(out, *rec)
	}
	r.mu.RUnlock()
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// Workloads returns the distinct workloads with recorded runs, sorted.
func (r *Registry) Workloads() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byWorkload))
	for w := range r.byWorkload {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of indexed records.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.order)
}

// Path returns the active JSONL file path.
func (r *Registry) Path() string { return r.path }

// Err returns the registry's writability status (nil when healthy) — the
// registry half of the service's readiness gate: the most recent
// asynchronous write error, or a closed registry.
func (r *Registry) Err() error {
	r.lifeMu.RLock()
	closed := r.closed
	r.lifeMu.RUnlock()
	if closed {
		return errors.New("runlog: registry closed")
	}
	return r.writeErr()
}

// writeErr returns the most recent asynchronous write error.
func (r *Registry) writeErr() error {
	if err, ok := r.lastErr.Load().(error); ok {
		return err
	}
	return nil
}

// Sync waits for every queued record to reach the file and flushes it. For
// use at checkpoints (tests, shutdown), not on the serving path.
func (r *Registry) Sync() error {
	r.pending.Wait()
	if err := r.Err(); err != nil {
		return err
	}
	return r.file.Sync()
}

// Close drains the queue and closes the file. Further Appends fail.
func (r *Registry) Close() error {
	r.lifeMu.Lock()
	if r.closed {
		r.lifeMu.Unlock()
		return nil
	}
	r.closed = true
	r.lifeMu.Unlock()
	r.pending.Wait()
	close(r.ch)
	<-r.done
	err := r.writeErr()
	if cerr := r.file.Close(); err == nil {
		err = cerr
	}
	return err
}

// Load reads every complete record from the registry files at path (rotated
// oldest-first, then the active file) without opening them for writing —
// the offline access path used by udao-traceview. A missing active file with
// no rotated siblings is an error.
func Load(path string) ([]Record, error) {
	var out []Record
	seen := map[string]bool{}
	found := false
	for i := DefaultKeep + 8; i >= 1; i-- {
		recs, _, err := readRecords(RotatedPath(path, i))
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue
			}
			return nil, err
		}
		found = true
		for _, rec := range recs {
			if !seen[rec.ID] {
				seen[rec.ID] = true
				out = append(out, rec)
			}
		}
	}
	recs, _, err := readRecords(path)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) || !found {
			return nil, fmt.Errorf("runlog: %w", err)
		}
	} else {
		found = true
		for _, rec := range recs {
			if !seen[rec.ID] {
				seen[rec.ID] = true
				out = append(out, rec)
			}
		}
	}
	if !found {
		return nil, fmt.Errorf("runlog: no registry files at %s", path)
	}
	return out, nil
}

// FormatID reports whether id looks like a registry run ID ("run-000001") —
// used by CLI argument dispatch to distinguish run IDs from workload names.
func FormatID(id string) bool {
	return strings.HasPrefix(id, "run-") && len(id) > 4
}
