package runlog

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func testClock() func() time.Time {
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	n := 0
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		n++
		return t0.Add(time.Duration(n) * time.Minute)
	}
}

func frontier(points ...[]float64) []FrontierPoint {
	out := make([]FrontierPoint, len(points))
	for i, p := range points {
		out[i] = FrontierPoint{F: p}
	}
	return out
}

func record(workload string, points ...[]float64) Record {
	return Record{
		Workload:   workload,
		Objectives: []string{"latency", "cores"},
		Probes:     30,
		Frontier:   frontier(points...),
		Evals:      100,
	}
}

func TestAppendGetAndQuality(t *testing.T) {
	dir := t.TempDir()
	reg, err := Open(filepath.Join(dir, "runs.jsonl"), Options{Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	a, err := reg.Append(record("q1", []float64{1, 10}, []float64{2, 5}, []float64{3, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != "run-000001" {
		t.Fatalf("ID = %q", a.ID)
	}
	if a.Quality.Hypervolume <= 0 || a.Quality.Hypervolume > 1 {
		t.Fatalf("hypervolume = %v", a.Quality.Hypervolume)
	}
	if a.Quality.Coverage != 3 {
		t.Fatalf("coverage = %d", a.Quality.Coverage)
	}
	if a.Quality.PrevRunID != "" || a.Quality.Consistency != 0 {
		t.Fatalf("first run quality = %+v", a.Quality)
	}

	// Second run of the same workload: consistency and delta vs the first.
	b, err := reg.Append(record("q1", []float64{1, 10}, []float64{2, 5}, []float64{3, 2}, []float64{2.5, 3}))
	if err != nil {
		t.Fatal(err)
	}
	if b.Quality.PrevRunID != a.ID {
		t.Fatalf("prev = %q, want %q", b.Quality.PrevRunID, a.ID)
	}
	if b.Quality.Consistency != 0 {
		t.Fatalf("consistency of superset frontier = %v, want 0", b.Quality.Consistency)
	}
	if b.Quality.HypervolumeDelta <= 0 {
		t.Fatalf("delta = %v, want > 0 for a grown frontier", b.Quality.HypervolumeDelta)
	}

	// A different workload starts its own series.
	c, err := reg.Append(record("q2", []float64{4, 4}))
	if err != nil {
		t.Fatal(err)
	}
	if c.Quality.PrevRunID != "" {
		t.Fatalf("cross-workload prev = %q", c.Quality.PrevRunID)
	}

	got, ok := reg.Get(b.ID)
	if !ok || got.Workload != "q1" || len(got.Frontier) != 4 {
		t.Fatalf("Get(%q) = %+v, %v", b.ID, got, ok)
	}
	if _, ok := reg.Get("run-999999"); ok {
		t.Fatal("Get of unknown ID succeeded")
	}
	if l := reg.List("q1", time.Time{}, 0); len(l) != 2 {
		t.Fatalf("List(q1) = %d records", len(l))
	}
	if l := reg.List("", time.Time{}, 2); len(l) != 2 || l[1].ID != c.ID {
		t.Fatalf("List limit: %+v", l)
	}
	if w := reg.Workloads(); len(w) != 2 || w[0] != "q1" || w[1] != "q2" {
		t.Fatalf("Workloads = %v", w)
	}
}

func TestObjectiveSetSplitsSeries(t *testing.T) {
	dir := t.TempDir()
	reg, err := Open(filepath.Join(dir, "runs.jsonl"), Options{Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	a := record("q1", []float64{1, 2})
	if _, err := reg.Append(a); err != nil {
		t.Fatal(err)
	}
	b := Record{Workload: "q1", Objectives: []string{"latency", "cost2", "cores"},
		Frontier: frontier([]float64{1, 2, 3})}
	got, err := reg.Append(b)
	if err != nil {
		t.Fatal(err)
	}
	// Different objective set: no cross-dimension comparison is attempted.
	if got.Quality.PrevRunID != "" {
		t.Fatalf("prev = %q, want none across objective sets", got.Quality.PrevRunID)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "runs.jsonl")
	reg, err := Open(path, Options{Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 5; i++ {
		rec, err := reg.Append(record("q1", []float64{1, 10}, []float64{2, 5}))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.ID)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	reg2, err := Open(path, Options{Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	if reg2.Len() != 5 {
		t.Fatalf("reloaded %d records, want 5", reg2.Len())
	}
	for _, id := range ids {
		if _, ok := reg2.Get(id); !ok {
			t.Fatalf("record %s lost across reopen", id)
		}
	}
	// Sequence continues, no ID reuse.
	next, err := reg2.Append(record("q1", []float64{1, 9}))
	if err != nil {
		t.Fatal(err)
	}
	if next.ID != "run-000006" {
		t.Fatalf("next ID = %q, want run-000006", next.ID)
	}
	// Quality still chains to the last pre-restart run.
	if next.Quality.PrevRunID != ids[4] {
		t.Fatalf("prev after restart = %q, want %q", next.Quality.PrevRunID, ids[4])
	}
}

func TestCrashRecoveryTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "runs.jsonl")
	reg, err := Open(path, Options{Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := reg.Append(record("q1", []float64{1, 10})); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: a half-written final record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"run-000004","workload":"q1","front`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reg2, err := Open(path, Options{Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	if reg2.Len() != 3 {
		t.Fatalf("recovered %d records, want 3 (partial tail dropped)", reg2.Len())
	}
	// The repaired file accepts new appends that parse cleanly afterwards.
	rec, err := reg2.Append(record("q1", []float64{2, 4}))
	if err != nil {
		t.Fatal(err)
	}
	if rec.ID != "run-000004" {
		t.Fatalf("post-repair ID = %q", rec.ID)
	}
	if err := reg2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("Load after repair = %d records, want 4", len(recs))
	}
	for _, r := range recs {
		if r.Workload != "q1" {
			t.Fatalf("corrupt record surfaced: %+v", r)
		}
	}
}

func TestCorruptInteriorLineSkipped(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "runs.jsonl")
	lines := []string{
		`{"id":"run-000001","workload":"q1","objectives":["a","b"],"frontier":[{"f":[1,2]}],"quality":{}}`,
		`GARBAGE NOT JSON`,
		`{"id":"run-000003","workload":"q1","objectives":["a","b"],"frontier":[{"f":[1,2]}],"quality":{}}`,
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg, err := Open(path, Options{Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if reg.Len() != 2 {
		t.Fatalf("indexed %d records, want 2 (garbage line skipped)", reg.Len())
	}
	// Interior garbage must not truncate the valid records after it.
	if _, ok := reg.Get("run-000003"); !ok {
		t.Fatal("record after garbage line lost")
	}
}

func TestRotationBoundsFileAndKeepsIndex(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "runs.jsonl")
	reg, err := Open(path, Options{MaxBytes: 2048, Keep: 2, Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := reg.Append(record("q1", []float64{1, 10}, []float64{2, 5})); err != nil {
			t.Fatal(err)
		}
	}
	if reg.Len() != n {
		t.Fatalf("index = %d, want %d", reg.Len(), n)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 2048 {
		t.Fatalf("active file %d bytes, want <= 2048", st.Size())
	}
	if _, err := os.Stat(RotatedPath(path, 1)); err != nil {
		t.Fatal("no rotated file produced")
	}
	// Reopen: records still on disk (active + rotated) come back; the oldest
	// may be gone (dropped past Keep), but recent ones must survive.
	reg2, err := Open(path, Options{MaxBytes: 2048, Keep: 2, Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	if reg2.Len() == 0 || reg2.Len() > n {
		t.Fatalf("reloaded %d records", reg2.Len())
	}
	if _, ok := reg2.Get(fmt.Sprintf("run-%06d", n)); !ok {
		t.Fatal("latest record lost after rotation+reopen")
	}
	// IDs keep counting past the dropped history.
	rec, err := reg2.Append(record("q1", []float64{1, 10}))
	if err != nil {
		t.Fatal(err)
	}
	if rec.ID != fmt.Sprintf("run-%06d", n+1) {
		t.Fatalf("ID after reopen = %q", rec.ID)
	}
}

func TestRecordsMarshalWithoutNaN(t *testing.T) {
	dir := t.TempDir()
	reg, err := Open(filepath.Join(dir, "runs.jsonl"), Options{Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	// An empty frontier cannot produce a box: quality degrades to the
	// documented sentinel, and the record still hits the disk as valid JSON.
	rec, err := reg.Append(Record{Workload: "q1", Objectives: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Quality.Hypervolume != QualityUnknown {
		t.Fatalf("empty-frontier HV = %v, want %v", rec.Quality.Hypervolume, QualityUnknown)
	}
	if err := reg.Sync(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(reg.Path())
	if err != nil {
		t.Fatal(err)
	}
	var decoded Record
	if err := json.Unmarshal([]byte(strings.TrimSpace(string(data))), &decoded); err != nil {
		t.Fatalf("record line is not valid JSON: %v", err)
	}
}

func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	reg, err := Open(filepath.Join(dir, "runs.jsonl"), Options{Now: testClock(), Buffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const writers, per = 8, 25
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				wl := fmt.Sprintf("q%d", w%3)
				if _, err := reg.Append(record(wl, []float64{1, 10}, []float64{2, 5})); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if reg.Len() != writers*per {
		t.Fatalf("index = %d, want %d", reg.Len(), writers*per)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := Load(filepath.Join(dir, "runs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != writers*per {
		t.Fatalf("disk = %d records, want %d", len(recs), writers*per)
	}
}

func TestRotatingFileSingleWriteLargerThanBound(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "big.log")
	w, err := OpenRotating(path, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	big := strings.Repeat("x", 64) + "\n"
	if _, err := w.Write([]byte(big)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte(big)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Each oversized write went into its own file, whole.
	for _, p := range []string{path, RotatedPath(path, 1)} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != big {
			t.Fatalf("%s holds %d bytes, want one whole record", p, len(data))
		}
	}
	if _, err := w.Write([]byte("after close")); err == nil {
		t.Fatal("write after close succeeded")
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.jsonl")); err == nil {
		t.Fatal("Load of missing registry succeeded")
	}
}
