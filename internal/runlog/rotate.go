package runlog

import (
	"fmt"
	"os"
	"sync"
)

// DefaultMaxBytes is the rotation threshold used when a RotatingFile is
// opened with maxBytes <= 0: large enough that rotation is rare, small
// enough that a single file stays greppable.
const DefaultMaxBytes = 64 << 20 // 64 MiB

// DefaultKeep is the number of rotated files kept when keep <= 0.
const DefaultKeep = 3

// RotatingFile is a size-bounded append-only file writer. When a write would
// push the file past maxBytes, the file is rotated first: path.N-1 → path.N
// (dropping the oldest), …, path.1 → path.2, path → path.1, and a fresh file
// is opened at path. Rotation happens only at Write boundaries, so callers
// that write whole records per call (one JSON line per Write) never see a
// record split across files. Both the run registry and the telemetry trace
// sink write through this type, which is why long-running servers cannot
// grow either artifact without bound.
type RotatingFile struct {
	mu       sync.Mutex
	path     string
	maxBytes int64
	keep     int
	f        *os.File
	size     int64
}

// OpenRotating opens (creating if needed) the append-only file at path with
// the given rotation threshold and number of rotated files to keep
// (<= 0 selects DefaultMaxBytes / DefaultKeep).
func OpenRotating(path string, maxBytes int64, keep int) (*RotatingFile, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if keep <= 0 {
		keep = DefaultKeep
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &RotatingFile{path: path, maxBytes: maxBytes, keep: keep, f: f, size: st.Size()}, nil
}

// RotatedPath returns the name of the i-th rotated file (i >= 1), oldest
// last: path.1 is the most recently rotated file.
func RotatedPath(path string, i int) string { return fmt.Sprintf("%s.%d", path, i) }

// Write appends p, rotating first if the write would exceed the size bound.
// A single write larger than the bound goes into a fresh file whole.
func (w *RotatingFile) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, os.ErrClosed
	}
	if w.size > 0 && w.size+int64(len(p)) > w.maxBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	n, err := w.f.Write(p)
	w.size += int64(n)
	return n, err
}

// rotateLocked shifts the rotation chain and reopens a fresh file at path.
func (w *RotatingFile) rotateLocked() error {
	if err := w.f.Close(); err != nil {
		return err
	}
	w.f = nil
	// Shift path.keep-1 → path.keep, …, path.1 → path.2; the previous
	// path.keep (oldest) is overwritten by the rename and thereby dropped.
	for i := w.keep - 1; i >= 1; i-- {
		from := RotatedPath(w.path, i)
		if _, err := os.Stat(from); err == nil {
			if err := os.Rename(from, RotatedPath(w.path, i+1)); err != nil {
				return err
			}
		}
	}
	if err := os.Rename(w.path, RotatedPath(w.path, 1)); err != nil {
		return err
	}
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.f, w.size = f, 0
	return nil
}

// Size returns the current size of the active file.
func (w *RotatingFile) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Sync flushes the active file to stable storage.
func (w *RotatingFile) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return os.ErrClosed
	}
	return w.f.Sync()
}

// Close closes the active file. Further writes fail with os.ErrClosed.
func (w *RotatingFile) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
