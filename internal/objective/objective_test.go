package objective

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		p, q Point
		want bool
	}{
		{Point{1, 1}, Point{2, 2}, true},
		{Point{1, 2}, Point{2, 1}, false},
		{Point{1, 1}, Point{1, 1}, false}, // equal: no strict improvement
		{Point{1, 1}, Point{1, 2}, true},
		{Point{2, 2}, Point{1, 1}, false},
	}
	for i, c := range cases {
		if got := c.p.Dominates(c.q); got != c.want {
			t.Errorf("case %d: %v Dominates %v = %v, want %v", i, c.p, c.q, got, c.want)
		}
	}
}

func TestWeaklyDominates(t *testing.T) {
	if !(Point{1, 1}).WeaklyDominates(Point{1, 1}) {
		t.Fatal("point should weakly dominate itself")
	}
	if (Point{1, 2}).WeaklyDominates(Point{2, 1}) {
		t.Fatal("incomparable points should not weakly dominate")
	}
}

// Property: dominance is irreflexive and antisymmetric.
func TestDominanceProperties(t *testing.T) {
	f := func(a, b [3]float64) bool {
		p, q := Point(a[:]), Point(b[:])
		for _, v := range append(p.Clone(), q...) {
			if math.IsNaN(v) {
				return true
			}
		}
		if p.Dominates(p) {
			return false // irreflexive
		}
		if p.Dominates(q) && q.Dominates(p) {
			return false // antisymmetric
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: dominance is transitive.
func TestDominanceTransitive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		p := Point{rng.Float64(), rng.Float64()}
		q := Point{p[0] + rng.Float64(), p[1] + rng.Float64()}
		r := Point{q[0] + rng.Float64(), q[1] + rng.Float64()}
		if p.Dominates(q) && q.Dominates(r) && !p.Dominates(r) {
			t.Fatalf("transitivity violated: %v %v %v", p, q, r)
		}
	}
}

func TestFilter(t *testing.T) {
	sols := []Solution{
		{F: Point{1, 5}},
		{F: Point{2, 2}},
		{F: Point{5, 1}},
		{F: Point{3, 3}}, // dominated by (2,2)
		{F: Point{2, 2}}, // duplicate
	}
	out := Filter(sols)
	if len(out) != 3 {
		t.Fatalf("Filter returned %d points, want 3: %v", len(out), out)
	}
	// No point in the output may dominate another.
	for i := range out {
		for j := range out {
			if i != j && out[i].F.Dominates(out[j].F) {
				t.Fatalf("filtered set contains dominated point: %v dominates %v", out[i].F, out[j].F)
			}
		}
	}
}

// Property: Filter output is mutually non-dominated and a subset of input.
func TestFilterProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		sols := make([]Solution, n)
		for i := range sols {
			sols[i] = Solution{F: Point{rng.Float64(), rng.Float64()}}
		}
		out := Filter(sols)
		if len(out) == 0 || len(out) > n {
			return false
		}
		for i := range out {
			for j := range out {
				if i != j && out[i].F.Dominates(out[j].F) {
					return false
				}
			}
		}
		// every input point must be dominated-or-equal by some output point
		for _, s := range sols {
			ok := false
			for _, o := range out {
				if o.F.WeaklyDominates(s.F) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRectBasics(t *testing.T) {
	r, err := NewRect(Point{100, 8}, Point{300, 24})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Volume(); got != 200*16 {
		t.Fatalf("Volume = %v, want 3200", got)
	}
	m := r.Middle()
	if m[0] != 200 || m[1] != 16 {
		t.Fatalf("Middle = %v, want (200,16)", m)
	}
	if !r.Contains(Point{150, 16}) || r.Contains(Point{99, 16}) {
		t.Fatal("Contains wrong")
	}
	if _, err := NewRect(Point{1}, Point{0}); err == nil {
		t.Fatal("expected error for inverted corners")
	}
	if _, err := NewRect(Point{1, 2}, Point{3}); err == nil {
		t.Fatal("expected error for mismatched dims")
	}
}

// TestSubdivide2D reproduces the paper's Fig. 2(a) example: probing TPCx-BB
// Q2's rectangle [ (100,8), (300,24) ] at fM=(150,16) must leave exactly the
// two unshaded sub-hyperrectangles.
func TestSubdivide2D(t *testing.T) {
	r, _ := NewRect(Point{100, 8}, Point{300, 24})
	subs := r.Subdivide(Point{150, 16})
	if len(subs) != 2 {
		t.Fatalf("Subdivide returned %d rects, want 2: %v", len(subs), subs)
	}
	// (U1,N1) = [(100,16),(150,24)] and (U2,N2) = [(150,8),(300,16)]
	found1, found2 := false, false
	for _, s := range subs {
		if s.Utopia[0] == 100 && s.Utopia[1] == 16 && s.Nadir[0] == 150 && s.Nadir[1] == 24 {
			found1 = true
		}
		if s.Utopia[0] == 150 && s.Utopia[1] == 8 && s.Nadir[0] == 300 && s.Nadir[1] == 16 {
			found2 = true
		}
	}
	if !found1 || !found2 {
		t.Fatalf("unexpected subdivision: %v", subs)
	}
}

func TestSubdivideVolumeInvariant(t *testing.T) {
	// Sum of kept volumes + discarded lower/upper cells == total volume.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(2) // 2 or 3 dims
		u := make(Point, k)
		n := make(Point, k)
		fm := make(Point, k)
		for i := 0; i < k; i++ {
			u[i] = rng.Float64()
			n[i] = u[i] + 0.1 + rng.Float64()
			fm[i] = u[i] + (n[i]-u[i])*(0.05+0.9*rng.Float64())
		}
		r := Rect{Utopia: u, Nadir: n}
		subs := r.Subdivide(fm)
		sum := 0.0
		for _, s := range subs {
			sum += s.Volume()
			if s.Volume() < 0 {
				return false
			}
		}
		lower := Rect{Utopia: u, Nadir: fm}.Volume()
		upper := Rect{Utopia: fm, Nadir: n}.Volume()
		return math.Abs(sum+lower+upper-r.Volume()) < 1e-9*r.Volume()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSubdivideClampsOutOfRangeProbe(t *testing.T) {
	r, _ := NewRect(Point{0, 0}, Point{1, 1})
	subs := r.Subdivide(Point{-0.5, 0.5}) // probe outside: clamped to boundary
	for _, s := range subs {
		if !r.Contains(s.Utopia) || !r.Contains(s.Nadir) {
			t.Fatalf("subdivision escapes parent: %v", s)
		}
	}
}

func TestGridCells(t *testing.T) {
	r, _ := NewRect(Point{0, 0}, Point{1, 2})
	cells := r.GridCells(2)
	if len(cells) != 4 {
		t.Fatalf("GridCells(2) in 2D returned %d cells, want 4", len(cells))
	}
	sum := 0.0
	for _, c := range cells {
		sum += c.Volume()
	}
	if math.Abs(sum-r.Volume()) > 1e-12 {
		t.Fatalf("grid volumes sum to %v, want %v", sum, r.Volume())
	}
	// l=1 returns the rect itself.
	one := r.GridCells(1)
	if len(one) != 1 || one[0].Volume() != r.Volume() {
		t.Fatal("GridCells(1) should return the original rectangle")
	}
}

func TestBounds(t *testing.T) {
	refs := []Point{{100, 24}, {300, 8}}
	u, n := Bounds(refs)
	if u[0] != 100 || u[1] != 8 || n[0] != 300 || n[1] != 24 {
		t.Fatalf("Bounds = %v, %v", u, n)
	}
	if u2, n2 := Bounds(nil); u2 != nil || n2 != nil {
		t.Fatal("Bounds(nil) should return nil")
	}
}

func TestNormalize(t *testing.T) {
	p := Normalize(Point{150, 16}, Point{100, 8}, Point{300, 24})
	if math.Abs(p[0]-0.25) > 1e-12 || math.Abs(p[1]-0.5) > 1e-12 {
		t.Fatalf("Normalize = %v", p)
	}
	// degenerate axis
	d := Normalize(Point{5}, Point{5}, Point{5})
	if d[0] != 0 {
		t.Fatalf("degenerate Normalize = %v", d)
	}
}

func TestDist(t *testing.T) {
	if got := (Point{0, 3}).Dist(Point{4, 0}); got != 5 {
		t.Fatalf("Dist = %v", got)
	}
}

func TestSolutionClone(t *testing.T) {
	s := Solution{F: Point{1, 2}, X: []float64{3, 4}}
	c := s.Clone()
	c.F[0] = 9
	c.X[0] = 9
	if s.F[0] != 1 || s.X[0] != 3 {
		t.Fatal("Clone is shallow")
	}
}
