// Package objective defines the objective-space machinery of the Progressive
// Frontier approach (paper §III): points in a k-dimensional objective space,
// Pareto dominance, Utopia/Nadir points, hyperrectangles, the middle-point
// subdivision of Definition III.3, and the uncertain-space volume measure
// used to rank hyperrectangles and report frontier coverage.
//
// All objectives are minimized. Objectives that favor larger values (e.g.
// throughput) are negated by the caller before entering this package, as in
// Problem III.1 of the paper.
package objective

import (
	"fmt"
	"math"
	"sort"
)

// Point is a point in the k-dimensional objective space.
type Point []float64

// Clone returns a copy of p.
func (p Point) Clone() Point {
	out := make(Point, len(p))
	copy(out, p)
	return out
}

// Dominates reports whether p Pareto-dominates q: p is no worse in every
// objective and strictly better in at least one (Definition III.1).
func (p Point) Dominates(q Point) bool {
	if len(p) != len(q) {
		panic(fmt.Sprintf("objective: dimension mismatch %d != %d", len(p), len(q)))
	}
	strict := false
	for i := range p {
		if p[i] > q[i] {
			return false
		}
		if p[i] < q[i] {
			strict = true
		}
	}
	return strict
}

// WeaklyDominates reports whether p is no worse than q in every objective.
func (p Point) WeaklyDominates(q Point) bool {
	if len(p) != len(q) {
		panic(fmt.Sprintf("objective: dimension mismatch %d != %d", len(p), len(q)))
	}
	for i := range p {
		if p[i] > q[i] {
			return false
		}
	}
	return true
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	s := 0.0
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Solution couples a Pareto point in objective space with the configuration
// (decision vector) that achieves it — the paper's "plan".
type Solution struct {
	F Point     // objective values (all minimized)
	X []float64 // configuration in the solver's decision space
}

// Clone deep-copies the solution.
func (s Solution) Clone() Solution {
	x := make([]float64, len(s.X))
	copy(x, s.X)
	return Solution{F: s.F.Clone(), X: x}
}

// Filter removes every solution dominated by another solution in the set, and
// deduplicates identical objective vectors (the Filter step of Algorithm 1).
// The result is sorted lexicographically by objective values for determinism.
func Filter(sols []Solution) []Solution {
	out := make([]Solution, 0, len(sols))
	for i, s := range sols {
		dominated := false
		for j, t := range sols {
			if i == j {
				continue
			}
			if t.F.Dominates(s.F) {
				dominated = true
				break
			}
			// Deduplicate equal points: keep the first occurrence.
			if j < i && pointsEqual(t.F, s.F) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, s)
		}
	}
	SortSolutions(out)
	return out
}

func pointsEqual(a, b Point) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SortSolutions orders solutions lexicographically by objective values.
func SortSolutions(sols []Solution) {
	sort.Slice(sols, func(i, j int) bool {
		a, b := sols[i].F, sols[j].F
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// Rect is a hyperrectangle in objective space, identified by its local Utopia
// (componentwise lower) and Nadir (componentwise upper) corners.
type Rect struct {
	Utopia Point
	Nadir  Point
}

// NewRect builds a hyperrectangle and validates corner ordering.
func NewRect(utopia, nadir Point) (Rect, error) {
	if len(utopia) != len(nadir) {
		return Rect{}, fmt.Errorf("objective: corner dimension mismatch %d != %d", len(utopia), len(nadir))
	}
	for i := range utopia {
		if utopia[i] > nadir[i] {
			return Rect{}, fmt.Errorf("objective: utopia[%d]=%g > nadir[%d]=%g", i, utopia[i], i, nadir[i])
		}
	}
	return Rect{Utopia: utopia.Clone(), Nadir: nadir.Clone()}, nil
}

// Dim returns the dimensionality of the rectangle.
func (r Rect) Dim() int { return len(r.Utopia) }

// Volume returns the k-dimensional volume of the rectangle.
func (r Rect) Volume() float64 {
	v := 1.0
	for i := range r.Utopia {
		v *= r.Nadir[i] - r.Utopia[i]
	}
	return v
}

// Middle returns the midpoint (Utopia+Nadir)/2, the constraint upper corner
// of the Middle Point Probe (Definition III.3).
func (r Rect) Middle() Point {
	m := make(Point, r.Dim())
	for i := range m {
		m[i] = (r.Utopia[i] + r.Nadir[i]) / 2
	}
	return m
}

// Contains reports whether p lies inside the rectangle (inclusive).
func (r Rect) Contains(p Point) bool {
	for i := range p {
		if p[i] < r.Utopia[i] || p[i] > r.Nadir[i] {
			return false
		}
	}
	return true
}

// Subdivide splits the rectangle by the axis-aligned planes through the
// probed Pareto point f into up to 2^k - 2 sub-hyperrectangles, discarding
// the all-lower cell [Utopia, f] (provably empty of Pareto points: anything
// there would dominate f) and the all-upper cell [f, Nadir] (every point
// there is dominated by f). Degenerate zero-volume cells are dropped.
//
// This is generateSubRectangles of Algorithm 1, generalized to k dimensions.
func (r Rect) Subdivide(f Point) []Rect {
	k := r.Dim()
	if len(f) != k {
		panic(fmt.Sprintf("objective: Subdivide dimension mismatch %d != %d", len(f), k))
	}
	// Clamp f into the rectangle: an approximate solver may return a point
	// marginally outside due to rounding.
	fc := f.Clone()
	for i := range fc {
		if fc[i] < r.Utopia[i] {
			fc[i] = r.Utopia[i]
		}
		if fc[i] > r.Nadir[i] {
			fc[i] = r.Nadir[i]
		}
	}
	total := 1 << k
	out := make([]Rect, 0, total-2)
	for mask := 0; mask < total; mask++ {
		if mask == 0 || mask == total-1 {
			continue // all-lower (empty) and all-upper (dominated) cells
		}
		u := make(Point, k)
		n := make(Point, k)
		degenerate := false
		for i := 0; i < k; i++ {
			if mask&(1<<i) == 0 {
				u[i], n[i] = r.Utopia[i], fc[i]
			} else {
				u[i], n[i] = fc[i], r.Nadir[i]
			}
			if n[i] <= u[i] {
				degenerate = true
				break
			}
		}
		if degenerate {
			continue
		}
		out = append(out, Rect{Utopia: u, Nadir: n})
	}
	return out
}

// GridCells partitions the rectangle into an l^k uniform grid, as used by the
// parallel PF-AP algorithm (paper §IV-C). Cells are emitted in row-major
// order for determinism.
func (r Rect) GridCells(l int) []Rect {
	if l < 1 {
		panic("objective: grid degree must be >= 1")
	}
	k := r.Dim()
	total := 1
	for i := 0; i < k; i++ {
		total *= l
	}
	cells := make([]Rect, 0, total)
	idx := make([]int, k)
	for c := 0; c < total; c++ {
		u := make(Point, k)
		n := make(Point, k)
		for i := 0; i < k; i++ {
			span := (r.Nadir[i] - r.Utopia[i]) / float64(l)
			u[i] = r.Utopia[i] + float64(idx[i])*span
			n[i] = u[i] + span
		}
		cells = append(cells, Rect{Utopia: u, Nadir: n})
		for i := 0; i < k; i++ {
			idx[i]++
			if idx[i] < l {
				break
			}
			idx[i] = 0
		}
	}
	return cells
}

// Bounds computes the global Utopia and Nadir points from the k reference
// points (per-objective minimizers), per Definition III.2: the Utopia point
// takes the componentwise minimum and the Nadir the componentwise maximum.
func Bounds(refs []Point) (utopia, nadir Point) {
	if len(refs) == 0 {
		return nil, nil
	}
	k := len(refs[0])
	utopia = make(Point, k)
	nadir = make(Point, k)
	for j := 0; j < k; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range refs {
			if r[j] < lo {
				lo = r[j]
			}
			if r[j] > hi {
				hi = r[j]
			}
		}
		utopia[j], nadir[j] = lo, hi
	}
	return utopia, nadir
}

// Normalize maps p into [0,1]^k relative to the [utopia, nadir] box; values
// outside the box map outside [0,1]. Degenerate axes (utopia == nadir) map
// to 0.
func Normalize(p, utopia, nadir Point) Point {
	out := make(Point, len(p))
	for i := range p {
		span := nadir[i] - utopia[i]
		if span <= 0 {
			out[i] = 0
			continue
		}
		out[i] = (p[i] - utopia[i]) / span
	}
	return out
}
