package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/solver"
	"repro/internal/solver/mogd"
)

// AblationRow is one variant's outcome in a design-choice ablation
// (DESIGN.md §4).
type AblationRow struct {
	Variant   string
	Uncertain float64       // uncertain fraction at the probe budget
	Points    int           // frontier size
	Elapsed   time.Duration // wall-clock
	Extra     float64       // study-specific metric (documented per study)
}

// WriteAblation prints ablation rows.
func WriteAblation(w io.Writer, title, extraName string, rows []AblationRow) {
	fmt.Fprintf(w, "ablation: %s\n", title)
	fmt.Fprintf(w, "%-16s %12s %8s %12s %12s\n", "variant", "uncertain%", "points", "elapsed(ms)", extraName)
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %12.1f %8d %12.1f %12.3f\n",
			r.Variant, 100*r.Uncertain, r.Points, float64(r.Elapsed.Microseconds())/1000, r.Extra)
	}
}

// AblationQueueOrder compares the uncertainty-aware largest-volume-first
// probing policy against FIFO and random orders at a fixed probe budget —
// the paper's claim that volume ordering "reduces the uncertain space as
// fast as we can" (§IV-A).
func (l *Lab) AblationQueueOrder(setup *Setup, probes int, seed int64) ([]AblationRow, error) {
	var rows []AblationRow
	for _, v := range []struct {
		name  string
		order core.ProbeOrder
	}{{"volume(paper)", core.OrderVolume}, {"fifo", core.OrderFIFO}, {"random", core.OrderRandom}} {
		s, err := mogd.New(mogd.Problem{Objectives: setup.Models, Space: setup.Space},
			mogd.Config{Starts: 6, Iters: 80, Seed: seed})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		front, err := core.Sequential(s, core.Options{Probes: probes, Seed: seed, Order: v.order})
		if err != nil {
			return nil, err
		}
		u := metrics.UncertainFraction(solutionsToPoints(front), setup.Utopia, setup.Nadir)
		rows = append(rows, AblationRow{Variant: v.name, Uncertain: u, Points: len(front), Elapsed: time.Since(start)})
	}
	return rows, nil
}

// AblationMultiStart varies MOGD's multi-start count on a representative CO
// problem; Extra is the achieved target objective (lower = better local
// minimum).
func (l *Lab) AblationMultiStart(setup *Setup, starts []int, seed int64) ([]AblationRow, error) {
	k := len(setup.Models)
	lo := make([]float64, k)
	hi := make([]float64, k)
	for j := 0; j < k; j++ {
		lo[j] = setup.Utopia[j]
		hi[j] = (setup.Utopia[j] + setup.Nadir[j]) / 2
	}
	co := solver.CO{Target: 0, Lo: lo, Hi: hi}
	var rows []AblationRow
	for _, st := range starts {
		s, err := mogd.New(mogd.Problem{Objectives: setup.Models, Space: setup.Space},
			mogd.Config{Starts: st, Iters: 80, Seed: seed})
		if err != nil {
			return nil, err
		}
		begin := time.Now()
		sol, ok := s.Solve(co, seed)
		val := math.NaN()
		if ok {
			val = sol.F[0]
		}
		rows = append(rows, AblationRow{Variant: fmt.Sprintf("starts=%d", st), Elapsed: time.Since(begin), Extra: val, Points: boolToInt(ok)})
	}
	return rows, nil
}

// AblationGridDegree varies PF-AP's grid degree l; Extra is the probes
// actually issued.
func (l *Lab) AblationGridDegree(setup *Setup, degrees []int, probes int, seed int64) ([]AblationRow, error) {
	var rows []AblationRow
	for _, g := range degrees {
		s, err := mogd.New(mogd.Problem{Objectives: setup.Models, Space: setup.Space},
			mogd.Config{Starts: 6, Iters: 80, Seed: seed})
		if err != nil {
			return nil, err
		}
		issued := 0
		start := time.Now()
		front, err := core.Parallel(s, core.Options{Probes: probes, Grid: g, Seed: seed,
			OnProgress: func(sn core.Snapshot) { issued = sn.Probes }})
		if err != nil {
			return nil, err
		}
		u := metrics.UncertainFraction(solutionsToPoints(front), setup.Utopia, setup.Nadir)
		rows = append(rows, AblationRow{Variant: fmt.Sprintf("l=%d", g), Uncertain: u, Points: len(front), Elapsed: time.Since(start), Extra: float64(issued)})
	}
	return rows, nil
}

// AblationUncertaintyAlpha varies the conservative-objective multiplier α
// under inaccurate models; Extra is the measured (actual) latency of the
// recommendation, which α is supposed to protect (§IV-B.3).
func (l *Lab) AblationUncertaintyAlpha(setup *Setup, alphas []float64, seed int64) ([]AblationRow, error) {
	var rows []AblationRow
	for _, a := range alphas {
		s, err := mogd.New(mogd.Problem{Objectives: setup.Models, Space: setup.Space},
			mogd.Config{Starts: 6, Iters: 80, Alpha: a, Seed: seed})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		front, err := core.Parallel(s, core.Options{Probes: 20, Seed: seed})
		if err != nil {
			return nil, err
		}
		actual := math.NaN()
		if len(front) > 0 {
			// Measure the latency-favoring end of the frontier.
			best := front[0]
			for _, f := range front[1:] {
				if f.F[0] < best.F[0] {
					best = f
				}
			}
			conf, err := setup.Space.Decode(best.X)
			if err == nil {
				if p, err := setup.Measure(conf); err == nil {
					actual = p[0]
				}
			}
		}
		u := metrics.UncertainFraction(solutionsToPoints(front), setup.Utopia, setup.Nadir)
		rows = append(rows, AblationRow{Variant: fmt.Sprintf("alpha=%.1f", a), Uncertain: u, Points: len(front), Elapsed: time.Since(start), Extra: actual})
	}
	return rows, nil
}

// AblationPenalty varies the constrained-loss penalty constant P (Eq. 3);
// Extra is the fraction of middle-point probes that found a feasible point.
func (l *Lab) AblationPenalty(setup *Setup, penalties []float64, seed int64) ([]AblationRow, error) {
	k := len(setup.Models)
	// A set of representative CO problems: the 2^k grid cells' lower boxes.
	var cos []solver.CO
	for mask := 0; mask < 1<<k; mask++ {
		lo := make([]float64, k)
		hi := make([]float64, k)
		for j := 0; j < k; j++ {
			span := setup.Nadir[j] - setup.Utopia[j]
			if mask&(1<<j) == 0 {
				lo[j] = setup.Utopia[j]
				hi[j] = setup.Utopia[j] + span/4
			} else {
				lo[j] = setup.Utopia[j] + span/2
				hi[j] = setup.Utopia[j] + 3*span/4
			}
		}
		cos = append(cos, solver.CO{Target: 0, Lo: lo, Hi: hi})
	}
	var rows []AblationRow
	for _, p := range penalties {
		s, err := mogd.New(mogd.Problem{Objectives: setup.Models, Space: setup.Space},
			mogd.Config{Starts: 6, Iters: 80, Penalty: p, Seed: seed})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		results := s.SolveBatch(cos, seed)
		found := 0
		for _, r := range results {
			if r.OK {
				found++
			}
		}
		rows = append(rows, AblationRow{
			Variant: fmt.Sprintf("P=%g", p),
			Elapsed: time.Since(start),
			Points:  found,
			Extra:   float64(found) / float64(len(cos)),
		})
	}
	return rows, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
