package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/solver"
	"repro/internal/solver/exact"
	"repro/internal/solver/mogd"
)

// SpeedupTable is the headline "2–50× speedup over existing MOO methods"
// result (§I, §VI): for each baseline, the ratio of its time-to-first-Pareto
// set (and time to reach 10% uncertain space) over PF-AP's, aggregated
// across jobs.
type SpeedupTable struct {
	Methods []string
	// MinRatio/MedianRatio/MaxRatio of time-to-first-frontier vs PF-AP.
	MinRatio, MedianRatio, MaxRatio []float64
	Jobs                            int
}

// Speedups runs PF-AP and the baselines across the setups and derives the
// speedup distribution.
func (l *Lab) Speedups(setups []*Setup, baselines []string, points int, seed int64) (SpeedupTable, error) {
	out := SpeedupTable{Methods: baselines, Jobs: len(setups)}
	ratios := make([][]float64, len(baselines))
	for jobIdx, setup := range setups {
		pf, err := l.RunPF(setup, true, points, seed+int64(jobIdx))
		if err != nil {
			return out, err
		}
		pfTime := math.Max(float64(pf.TimeToFirst), 1)
		for i, name := range baselines {
			res, err := l.CompareMethods(setup, []string{name}, points, seed+int64(jobIdx))
			if err != nil {
				return out, err
			}
			t := float64(res[0].TimeToFirst)
			if t == 0 { // never produced a frontier: use total runtime
				t = float64(res[0].Total)
			}
			ratios[i] = append(ratios[i], t/pfTime)
		}
	}
	for _, r := range ratios {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range r {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		out.MinRatio = append(out.MinRatio, lo)
		out.MedianRatio = append(out.MedianRatio, median(r))
		out.MaxRatio = append(out.MaxRatio, hi)
	}
	return out, nil
}

// Print writes the speedup table.
func (t SpeedupTable) Print(w io.Writer) {
	fmt.Fprintf(w, "time-to-first-Pareto-set vs PF-AP across %d jobs\n", t.Jobs)
	fmt.Fprintf(w, "%-8s %10s %10s %10s\n", "method", "min x", "median x", "max x")
	for i, m := range t.Methods {
		fmt.Fprintf(w, "%-8s %10.1f %10.1f %10.1f\n", m, t.MinRatio[i], t.MedianRatio[i], t.MaxRatio[i])
	}
}

// SolverRow is one line of the §V solver comparison: per-CO-problem time and
// achieved objective for MOGD vs the near-exact reference solver (the role
// Knitro plays in the paper: 17–42 minutes per problem vs MOGD's 0.1–0.5 s).
type SolverRow struct {
	ModelKind string
	Solver    string
	TimePerCO time.Duration
	Objective float64 // achieved target value (lower is better)
	Feasible  bool
}

// SolverComparison solves one representative middle-point CO problem on the
// setup's models with both solvers.
func (l *Lab) SolverComparison(setup *Setup, kind ModelKind, seed int64) ([]SolverRow, error) {
	// Build the CO problem: minimize objective 0 within the lower half-box
	// of the model box (a typical Middle Point Probe).
	k := len(setup.Models)
	lo := make([]float64, k)
	hi := make([]float64, k)
	for j := 0; j < k; j++ {
		lo[j] = setup.Utopia[j]
		hi[j] = (setup.Utopia[j] + setup.Nadir[j]) / 2
	}
	co := solver.CO{Target: 0, Lo: lo, Hi: hi}

	var rows []SolverRow
	mg, err := mogd.New(mogd.Problem{Objectives: setup.Models, Space: setup.Space}, mogd.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	sol, ok := mg.Solve(co, seed)
	rows = append(rows, SolverRow{ModelKind: kind.String(), Solver: "MOGD", TimePerCO: time.Since(start), Objective: objOrNaN(sol.F, ok), Feasible: ok})

	// The exact reference gets a deep search budget befitting its Knitro
	// role: thorough enough to approach the global optimum, orders of
	// magnitude slower than MOGD.
	ex, err := exact.New(setup.Models, setup.Space, exact.Config{Samples: 262144, Refine: 6, Steps: 48})
	if err != nil {
		return nil, err
	}
	start = time.Now()
	sol, ok = ex.Solve(co, seed)
	rows = append(rows, SolverRow{ModelKind: kind.String(), Solver: "Exact", TimePerCO: time.Since(start), Objective: objOrNaN(sol.F, ok), Feasible: ok})
	return rows, nil
}

func objOrNaN(f []float64, ok bool) float64 {
	if !ok || len(f) == 0 {
		return math.NaN()
	}
	return f[0]
}

// WriteSolverRows prints the solver comparison.
func WriteSolverRows(w io.Writer, rows []SolverRow) {
	fmt.Fprintf(w, "%-6s %-6s %14s %14s %9s\n", "model", "solver", "time/CO", "objective", "feasible")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %-6s %14s %14.2f %9v\n", r.ModelKind, r.Solver, r.TimePerCO.Round(time.Microsecond), r.Objective, r.Feasible)
	}
}
