package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/objective"
)

// quickLab builds a lab sized for test speed.
func quickLab() *Lab {
	l := NewLab(1)
	l.Samples = 30
	l.DNNCfg.Epochs = 60
	l.GPCfg.MLEIters = 15
	return l
}

func TestBatchSetup(t *testing.T) {
	l := quickLab()
	s, err := l.BatchSetup(9, KindGP, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Models) != 2 || s.Names[0] != ObjLatency || s.Names[1] != ObjCores {
		t.Fatalf("bad setup: %v", s.Names)
	}
	if len(s.Utopia) != 2 || s.Nadir[0] <= s.Utopia[0] {
		t.Fatalf("degenerate box: %v %v", s.Utopia, s.Nadir)
	}
	// Cores model is exact: cores in [2, 56].
	if s.Utopia[1] < 2 || s.Nadir[1] > 56 {
		t.Fatalf("cores bounds wrong: %v %v", s.Utopia[1], s.Nadir[1])
	}
	// Caching: same pointer back.
	s2, err := l.BatchSetup(9, KindGP, false)
	if err != nil || s2 != s {
		t.Fatal("setup not cached")
	}
	// Measure path works.
	p, err := s.Measure(s.DefaultConf)
	if err != nil || p[0] <= 0 {
		t.Fatalf("Measure = %v, %v", p, err)
	}
}

func TestStreamSetup(t *testing.T) {
	l := quickLab()
	s2, err := l.StreamSetup(54%63, KindGP, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Models) != 2 {
		t.Fatalf("2D stream setup has %d models", len(s2.Models))
	}
	s3, err := l.StreamSetup(54%63, KindGP, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(s3.Models) != 3 {
		t.Fatalf("3D stream setup has %d models", len(s3.Models))
	}
	// Throughput is negated: utopia (best) is more negative than nadir.
	if s2.Utopia[1] >= s2.Nadir[1] {
		t.Fatalf("negated throughput box wrong: %v %v", s2.Utopia[1], s2.Nadir[1])
	}
}

func TestCompareMethodsFig4a(t *testing.T) {
	l := quickLab()
	setup, err := l.BatchSetup(9, KindGP, false)
	if err != nil {
		t.Fatal(err)
	}
	results, err := l.CompareMethods(setup, []string{MethodPFAP, MethodPFAS, MethodWS, MethodNC}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if len(r.Frontier) == 0 {
			t.Fatalf("%s produced no frontier", r.Method)
		}
		if len(r.Series) == 0 {
			t.Fatalf("%s recorded no progress", r.Method)
		}
		// Incremental methods (PF) shrink uncertain space monotonically;
		// restart-based rungs (WS/NC) may fluctuate — that is the paper's
		// consistency argument.
		if r.Method == MethodPFAP || r.Method == MethodPFAS {
			prev := 1.0
			for _, p := range r.Series {
				if p.Uncertain > prev+0.05 {
					t.Fatalf("%s uncertain space rose: %v -> %v", r.Method, prev, p.Uncertain)
				}
				if p.Uncertain < prev {
					prev = p.Uncertain
				}
			}
		}
	}
	// PF-AP reduces uncertainty substantially.
	pf := results[0]
	if final := pf.Series[len(pf.Series)-1].Uncertain; final > 0.5 {
		t.Fatalf("PF-AP final uncertain space %v", final)
	}
	var buf bytes.Buffer
	WriteUncertainSeries(&buf, results)
	WriteTimeToFirst(&buf, results)
	WriteQualityTable(&buf, setup, results)
	if !strings.Contains(buf.String(), "PF-AP") {
		t.Fatal("missing method in output")
	}
	if !strings.Contains(buf.String(), "hypervolume") {
		t.Fatal("missing quality table in output")
	}
	hv := metrics.Hypervolume(pf.Frontier, setup.Utopia, setup.Nadir)
	if math.IsNaN(hv) || hv <= 0 || hv > 1 {
		t.Fatalf("PF-AP hypervolume = %v", hv)
	}
}

func TestCompareMethodsMOBO(t *testing.T) {
	l := quickLab()
	setup, err := l.BatchSetup(3, KindGP, false)
	if err != nil {
		t.Fatal(err)
	}
	results, err := l.CompareMethods(setup, []string{MethodEvo, MethodQEHVI, MethodPESM}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if len(r.Frontier) == 0 {
			t.Fatalf("%s produced no frontier", r.Method)
		}
	}
	if _, err := l.CompareMethods(setup, []string{"bogus"}, 4, 2); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestEvoInconsistency(t *testing.T) {
	l := quickLab()
	setup, err := l.BatchSetup(9, KindGP, false)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := l.RunEvoInconsistency(setup, []int{6, 8, 10}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(inc.Frontiers) != 3 || len(inc.Inconsistency) != 3 {
		t.Fatalf("bad result: %+v", inc)
	}
	if inc.Inconsistency[0] != 0 {
		t.Fatal("first run should have zero inconsistency")
	}
}

func TestAcrossJobs(t *testing.T) {
	l := quickLab()
	var setups []*Setup
	for _, id := range []int{3, 9} {
		s, err := l.BatchSetup(id, KindGP, false)
		if err != nil {
			t.Fatal(err)
		}
		setups = append(setups, s)
	}
	thresholds := []time.Duration{100 * time.Millisecond, time.Second, 10 * time.Second}
	sum, err := l.AcrossJobs(setups, []string{MethodPFAP, MethodEvo}, 8, thresholds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Jobs != 2 || len(sum.Median) != 2 {
		t.Fatalf("summary wrong: %+v", sum)
	}
	// The incremental method's medians fall (weakly) with time.
	for i := range sum.Methods {
		if sum.Methods[i] != MethodPFAP {
			continue
		}
		for j := 1; j < len(thresholds); j++ {
			if sum.Median[i][j] > sum.Median[i][j-1]+1e-9 {
				t.Fatalf("%s median rose over time: %v", sum.Methods[i], sum.Median[i])
			}
		}
	}
	var buf bytes.Buffer
	sum.Print(&buf)
	if !strings.Contains(buf.String(), "median uncertain space") {
		t.Fatal("missing header")
	}
}

func TestEndToEndExpt3(t *testing.T) {
	l := quickLab()
	rows, err := l.EndToEnd([]int{5}, KindGP, false, [2]float64{0.5, 0.5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.UdaoActual[0] <= 0 || r.OtterActual[0] <= 0 || r.ExpertActual[0] <= 0 {
		t.Fatalf("bad measurements: %+v", r)
	}
	var buf bytes.Buffer
	WriteFig6(&buf, rows, true)
	WriteFig6(&buf, rows, false)
	if !strings.Contains(buf.String(), "udao-lat%") {
		t.Fatal("missing header")
	}
	s := Summarize(rows)
	if s.UdaoTotalLat <= 0 {
		t.Fatalf("summary wrong: %+v", s)
	}
	top := TopLongRunning(rows, 5)
	if len(top) != 1 {
		t.Fatalf("top = %d", len(top))
	}
}

func TestStreamEndToEnd(t *testing.T) {
	l := quickLab()
	rows, err := l.StreamEndToEnd([]int{2}, [2]float64{0.9, 0.1}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].UdaoThr <= 0 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestPIRAnalysis(t *testing.T) {
	l := quickLab()
	rows, err := l.EndToEnd([]int{7}, KindGP, false, [2]float64{0.9, 0.1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	p := AnalyzePIR(rows)
	if p.UdaoCount != 1 || p.OtterCount != 1 || len(p.Points) != 2 {
		t.Fatalf("PIR analysis wrong: %+v", p)
	}
	var buf bytes.Buffer
	p.Print(&buf)
	if !strings.Contains(buf.String(), "UDAO") {
		t.Fatal("missing system row")
	}
}

func TestSolverComparison(t *testing.T) {
	l := quickLab()
	setup, err := l.BatchSetup(11, KindGP, false)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := l.SolverComparison(setup, KindGP, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The exact solver must be slower (that's its role).
	if rows[1].TimePerCO <= rows[0].TimePerCO {
		t.Logf("note: exact (%v) not slower than MOGD (%v) on this machine", rows[1].TimePerCO, rows[0].TimePerCO)
	}
	var buf bytes.Buffer
	WriteSolverRows(&buf, rows)
	if !strings.Contains(buf.String(), "MOGD") {
		t.Fatal("missing solver row")
	}
}

func TestSpeedups(t *testing.T) {
	l := quickLab()
	setup, err := l.BatchSetup(9, KindGP, false)
	if err != nil {
		t.Fatal(err)
	}
	table, err := l.Speedups([]*Setup{setup}, []string{MethodEvo}, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.MedianRatio) != 1 || table.MedianRatio[0] <= 0 {
		t.Fatalf("speedup table wrong: %+v", table)
	}
	var buf bytes.Buffer
	table.Print(&buf)
	if !strings.Contains(buf.String(), "Evo") {
		t.Fatal("missing method")
	}
}

func TestAblations(t *testing.T) {
	l := quickLab()
	setup, err := l.BatchSetup(9, KindGP, false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer

	rows, err := l.AblationQueueOrder(setup, 8, 10)
	if err != nil || len(rows) != 3 {
		t.Fatalf("queue order ablation: %v %v", rows, err)
	}
	WriteAblation(&buf, "queue order", "-", rows)

	rows, err = l.AblationMultiStart(setup, []int{1, 4, 8}, 11)
	if err != nil || len(rows) != 3 {
		t.Fatalf("multistart ablation: %v %v", rows, err)
	}
	WriteAblation(&buf, "multi-start", "objective", rows)

	rows, err = l.AblationGridDegree(setup, []int{2, 3}, 12, 12)
	if err != nil || len(rows) != 2 {
		t.Fatalf("grid ablation: %v %v", rows, err)
	}
	WriteAblation(&buf, "grid degree", "probes", rows)

	rows, err = l.AblationUncertaintyAlpha(setup, []float64{0, 1}, 13)
	if err != nil || len(rows) != 2 {
		t.Fatalf("alpha ablation: %v %v", rows, err)
	}
	WriteAblation(&buf, "alpha", "actual-lat", rows)

	rows, err = l.AblationPenalty(setup, []float64{1, 100}, 14)
	if err != nil || len(rows) != 2 {
		t.Fatalf("penalty ablation: %v %v", rows, err)
	}
	WriteAblation(&buf, "penalty", "feasible-frac", rows)

	if !strings.Contains(buf.String(), "ablation:") {
		t.Fatal("missing ablation output")
	}
}

func TestFrontierRows(t *testing.T) {
	l := quickLab()
	setup, err := l.BatchSetup(9, KindGP, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.RunPF(setup, true, 8, 15)
	if err != nil {
		t.Fatal(err)
	}
	rows := FrontierRows(res.Frontier)
	if len(rows) != len(res.Frontier) {
		t.Fatalf("rows = %d, frontier = %d", len(rows), len(res.Frontier))
	}
}

func TestUncertainAt(t *testing.T) {
	r := MethodResult{Series: []SeriesPoint{
		{Elapsed: time.Second, Uncertain: 0.5},
		{Elapsed: 2 * time.Second, Uncertain: 0.2},
	}}
	if r.UncertainAt(500*time.Millisecond) != 1 {
		t.Fatal("before first snapshot should be 1")
	}
	if r.UncertainAt(1500*time.Millisecond) != 0.5 {
		t.Fatal("interpolation wrong")
	}
	if r.UncertainAt(time.Minute) != 0.2 {
		t.Fatal("after last snapshot wrong")
	}
}

func TestKnobImportance(t *testing.T) {
	l := quickLab()
	setup, err := l.BatchSetup(9, KindGP, false)
	if err != nil {
		t.Fatal(err)
	}
	ranks, err := l.KnobImportance(setup, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 6 {
		t.Fatalf("ranks = %d", len(ranks))
	}
	// The preferred resource knobs must appear (they occupy half the budget).
	found := map[string]bool{}
	for _, r := range ranks {
		found[r.Knob] = true
	}
	if !found["spark.executor.instances"] || !found["spark.executor.cores"] {
		t.Fatalf("resource knobs missing from selection: %v", ranks)
	}
	var buf bytes.Buffer
	WriteKnobRanks(&buf, ranks)
	if !strings.Contains(buf.String(), "spark.executor.instances") {
		t.Fatal("missing knob in output")
	}
}

func TestCompareStrategies(t *testing.T) {
	l := quickLab()
	setup, err := l.BatchSetup(9, KindGP, false)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := l.CompareStrategies(setup, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 { // UN, WUN, WA-WUN + SLL/SLR/KPL/KPR in 2D
		t.Fatalf("strategies = %d", len(rows))
	}
	// The latency-favoring WUN must not pick a higher-latency point than UN.
	var un, wun objective.Point
	for _, r := range rows {
		switch r.Strategy {
		case "UN":
			un = r.F
		case "WUN(0.9,0.1)":
			wun = r.F
		}
	}
	if wun[0] > un[0]+1e-9 {
		t.Fatalf("WUN(0.9,0.1) picked higher latency than UN: %v vs %v", wun[0], un[0])
	}
	var buf bytes.Buffer
	WriteStrategyRows(&buf, setup.Names, rows)
	if !strings.Contains(buf.String(), "KPL") {
		t.Fatal("missing strategy in output")
	}
}
