package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/feature"
	"repro/internal/objective"
	"repro/internal/recommend"
	"repro/internal/solver/mogd"
	"repro/internal/space"
)

// KnobRank is one knob's importance ranking (Appendix C-A).
type KnobRank struct {
	Knob string
	Rank int // 1 = most important
}

// KnobImportance reproduces the paper's knob-selection step (Appendix C-A):
// a LASSO path over the workload's traces ranks the knobs by the order they
// enter the regularization path, mixed with the Spark-recommendation
// preference list (§V feature engineering). It returns the knobs in
// selection order.
func (l *Lab) KnobImportance(setup *Setup, k int) ([]KnobRank, error) {
	entries := setup.Entries
	if len(entries) == 0 {
		return nil, fmt.Errorf("experiments: no traces for %s", setup.Workload)
	}
	// Feature matrix: one column per raw knob (first encoded dim of each
	// variable — the spaces here have no categorical knobs).
	spc := setup.Space
	X := make([][]float64, len(entries))
	y := make([]float64, len(entries))
	for i, e := range entries {
		row := make([]float64, spc.NumVars())
		for j := range spc.Vars {
			row[j] = float64(e.Conf[j])
		}
		X[i] = row
		y[i] = e.Objectives[ObjLatency]
	}
	// Domain-knowledge preferences: the resource knobs Spark guides always
	// call out first.
	var preferred []int
	for _, name := range []string{"spark.executor.instances", "spark.executor.cores", "spark.executor.memory"} {
		if idx := spc.Lookup(name); idx >= 0 {
			preferred = append(preferred, idx)
		}
	}
	if keep := feature.FilterConstant(X); len(keep) == 0 {
		return nil, fmt.Errorf("experiments: all knob columns constant")
	}
	// Importance order: the domain-knowledge knobs first (up to half the
	// budget, as in SelectKnobs), then the LASSO path order.
	seen := map[int]bool{}
	var order []int
	half := (k + 1) / 2
	for _, p := range preferred {
		if len(order) >= half {
			break
		}
		if !seen[p] {
			order = append(order, p)
			seen[p] = true
		}
	}
	for _, j := range feature.LassoPathOrder(X, y) {
		if len(order) >= k {
			break
		}
		if !seen[j] {
			order = append(order, j)
			seen[j] = true
		}
	}
	out := make([]KnobRank, 0, len(order))
	for rank, j := range order {
		out = append(out, KnobRank{Knob: spc.Vars[j].Name, Rank: rank + 1})
	}
	return out, nil
}

// WriteKnobRanks prints the knob-importance table.
func WriteKnobRanks(w io.Writer, ranks []KnobRank) {
	fmt.Fprintf(w, "%-4s %s\n", "rank", "knob")
	for _, r := range ranks {
		fmt.Fprintf(w, "%-4d %s\n", r.Rank, r.Knob)
	}
}

// StrategyRow is one recommendation strategy's pick from a shared frontier
// (Appendix B).
type StrategyRow struct {
	Strategy string
	F        objective.Point
	Conf     space.Values
}

// CompareStrategies computes one Pareto frontier and reports what every
// selection strategy of §V/Appendix B recommends from it, under balanced
// external weights.
func (l *Lab) CompareStrategies(setup *Setup, seed int64) ([]StrategyRow, error) {
	solver, err := mogd.New(
		mogd.Problem{Objectives: setup.Models, Space: setup.Space},
		mogd.Config{Starts: 6, Iters: 80, Seed: seed},
	)
	if err != nil {
		return nil, err
	}
	front, err := core.Parallel(solver, core.Options{Probes: 40, Seed: seed})
	if err != nil {
		return nil, err
	}
	balanced := make([]float64, len(setup.Models))
	for i := range balanced {
		balanced[i] = 1
	}
	type pick struct {
		name string
		f    func() (objective.Solution, error)
	}
	picks := []pick{
		{"UN", func() (objective.Solution, error) { return recommend.UtopiaNearest(front) }},
		{"WUN(0.9,0.1)", func() (objective.Solution, error) {
			w := append([]float64(nil), balanced...)
			w[0] = 0.9
			if len(w) > 1 {
				w[1] = 0.1
			}
			return recommend.WeightedUtopiaNearest(front, w)
		}},
		{"WA-WUN(long)", func() (objective.Solution, error) {
			return recommend.WorkloadAwareWUN(front, balanced, recommend.LongRunning)
		}},
	}
	if len(setup.Models) == 2 {
		picks = append(picks,
			pick{"SLL", func() (objective.Solution, error) { return recommend.SlopeMaximization(front, recommend.Left) }},
			pick{"SLR", func() (objective.Solution, error) { return recommend.SlopeMaximization(front, recommend.Right) }},
			pick{"KPL", func() (objective.Solution, error) { return recommend.KneePoint(front, recommend.Left) }},
			pick{"KPR", func() (objective.Solution, error) { return recommend.KneePoint(front, recommend.Right) }},
		)
	}
	var rows []StrategyRow
	for _, p := range picks {
		sol, err := p.f()
		if err != nil {
			return nil, fmt.Errorf("experiments: strategy %s: %w", p.name, err)
		}
		conf, err := setup.Space.Decode(sol.X)
		if err != nil {
			return nil, err
		}
		rows = append(rows, StrategyRow{Strategy: p.name, F: sol.F, Conf: conf})
	}
	return rows, nil
}

// WriteStrategyRows prints the strategy comparison.
func WriteStrategyRows(w io.Writer, names []string, rows []StrategyRow) {
	fmt.Fprintf(w, "%-14s", "strategy")
	for _, n := range names {
		fmt.Fprintf(w, " %12s", n)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s", r.Strategy)
		for _, v := range r.F {
			fmt.Fprintf(w, " %12.2f", v)
		}
		fmt.Fprintln(w)
	}
}
