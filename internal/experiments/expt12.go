package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/moo"
	"repro/internal/moo/evo"
	"repro/internal/moo/mobo"
	"repro/internal/moo/nc"
	"repro/internal/moo/ws"
	"repro/internal/objective"
)

// Method names accepted by CompareMethods.
const (
	MethodPFAP  = "PF-AP"
	MethodPFAS  = "PF-AS"
	MethodWS    = "WS"
	MethodNC    = "NC"
	MethodEvo   = "Evo"
	MethodQEHVI = "qEHVI"
	MethodPESM  = "PESM"
)

// AllMethods lists every comparable method in presentation order.
var AllMethods = []string{MethodPFAP, MethodPFAS, MethodWS, MethodNC, MethodEvo, MethodQEHVI, MethodPESM}

// baseline constructs a moo baseline by name over the setup's models.
func (l *Lab) baseline(setup *Setup, name string) moo.Method {
	switch name {
	case MethodWS:
		return &ws.Method{Objectives: setup.Models}
	case MethodNC:
		return &nc.Method{Objectives: setup.Models}
	case MethodEvo:
		return &evo.Method{Objectives: setup.Models}
	case MethodQEHVI:
		return &mobo.Method{Objectives: setup.Models, Acq: mobo.QEHVI}
	case MethodPESM:
		return &mobo.Method{Objectives: setup.Models, Acq: mobo.PESM}
	}
	return nil
}

// CompareMethods runs the named methods on one workload with the same point
// budget — the engine behind Fig. 4(a)/4(d)/5(d) and Fig. 8(a).
func (l *Lab) CompareMethods(setup *Setup, names []string, points int, seed int64) ([]MethodResult, error) {
	out := make([]MethodResult, 0, len(names))
	for _, n := range names {
		var res MethodResult
		var err error
		switch n {
		case MethodPFAP:
			res, err = l.RunPF(setup, true, points, seed)
		case MethodPFAS:
			res, err = l.RunPF(setup, false, points, seed)
		case MethodQEHVI:
			// qEHVI adds one point per iteration (§VI-A): genuinely
			// incremental.
			res, err = l.RunBaseline(setup, l.baseline(setup, n), points, seed)
		case MethodWS, MethodNC, MethodEvo, MethodPESM:
			// Restart-based methods are rerun per budget rung with
			// cumulative time (the paper's probe ladder).
			name := n
			res, err = l.RunLadder(setup, func() moo.Method { return l.baseline(setup, name) }, points, seed)
		default:
			return nil, fmt.Errorf("experiments: unknown method %q", n)
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", n, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// WriteUncertainSeries prints each method's uncertain-space trajectory —
// the data series of Fig. 4(a)/4(d)/5(d)/8(a).
func WriteUncertainSeries(w io.Writer, results []MethodResult) {
	fmt.Fprintf(w, "%-8s %12s %12s %8s\n", "method", "elapsed(ms)", "uncertain%", "points")
	for _, r := range results {
		for _, p := range r.Series {
			fmt.Fprintf(w, "%-8s %12.1f %12.1f %8d\n",
				r.Method, float64(p.Elapsed.Microseconds())/1000, 100*p.Uncertain, p.Points)
		}
	}
}

// WriteTimeToFirst prints the time each method needed to produce its first
// Pareto set and its final uncertain space.
func WriteTimeToFirst(w io.Writer, results []MethodResult) {
	fmt.Fprintf(w, "%-8s %16s %14s %8s\n", "method", "first-set(ms)", "final-unc(%)", "points")
	for _, r := range results {
		final := 1.0
		if n := len(r.Series); n > 0 {
			final = r.Series[n-1].Uncertain
		}
		fmt.Fprintf(w, "%-8s %16.1f %14.1f %8d\n",
			r.Method, float64(r.TimeToFirst.Microseconds())/1000, 100*final, len(r.Frontier))
	}
}

// WriteQualityTable prints each method's final frontier quality in the
// setup's [Utopia, Nadir] box: the dominated-hypervolume fraction (higher is
// better), the frontier coverage and the final uncertain space — the §VI
// quality comparison behind the Fig. 4/5 frontier plots. Degenerate boxes
// render as "?" (the metrics package's NaN sentinel).
func WriteQualityTable(w io.Writer, setup *Setup, results []MethodResult) {
	fmt.Fprintf(w, "%-8s %14s %10s %14s %8s\n", "method", "hypervolume", "coverage", "uncertain(%)", "points")
	for _, r := range results {
		hv := metrics.Hypervolume(r.Frontier, setup.Utopia, setup.Nadir)
		cov := metrics.Coverage(r.Frontier, setup.Utopia, setup.Nadir)
		final := 1.0
		if n := len(r.Series); n > 0 {
			final = r.Series[n-1].Uncertain
		}
		fmt.Fprintf(w, "%-8s %14s %10d %14.1f %8d\n",
			r.Method, fmtMetric(hv), cov, 100*final, len(r.Frontier))
	}
}

// fmtMetric renders a quality value, mapping the NaN degenerate-box sentinel
// to "?".
func fmtMetric(v float64) string {
	if v != v { // NaN
		return "?"
	}
	return fmt.Sprintf("%.4f", v)
}

// FrontierRows formats a frontier as "F1 F2 [F3]" rows — Fig. 4(b)/4(c),
// 5(a)–(c), 8(b)–(d).
func FrontierRows(front []objective.Point) []string {
	sorted := append([]objective.Point(nil), front...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i][0] < sorted[j][0] })
	rows := make([]string, len(sorted))
	for i, p := range sorted {
		row := ""
		for j, v := range p {
			if j > 0 {
				row += "  "
			}
			row += fmt.Sprintf("%10.2f", v)
		}
		rows[i] = row
	}
	return rows
}

// EvoInconsistency runs Evo at increasing probe budgets (the paper's
// 30/40/50 of Fig. 4(e)) and reports the consistency violation of each
// frontier against the previous one (0 = consistent; PF is 0 by
// construction).
type EvoInconsistency struct {
	Probes        []int
	Frontiers     [][]objective.Point
	Inconsistency []float64 // [i] compares frontier i against i-1 (first = 0)
}

// RunEvoInconsistency reproduces Fig. 4(e)/8(d)-(e).
func (l *Lab) RunEvoInconsistency(setup *Setup, probes []int, seed int64) (EvoInconsistency, error) {
	out := EvoInconsistency{Probes: probes}
	for i, p := range probes {
		m := l.baseline(setup, MethodEvo)
		front, err := m.Run(moo.Options{Points: p, Seed: seed + int64(i)*31})
		if err != nil {
			return out, err
		}
		out.Frontiers = append(out.Frontiers, solutionsToPoints(front))
		if i == 0 {
			out.Inconsistency = append(out.Inconsistency, 0)
		} else {
			c := metrics.Consistency(out.Frontiers[i-1], out.Frontiers[i], setup.Utopia, setup.Nadir)
			out.Inconsistency = append(out.Inconsistency, c)
		}
	}
	return out, nil
}

// ThresholdSummary is the Fig. 4(f)/5(e)/5(f) aggregation: for each method
// and elapsed-time threshold, the median uncertain-space fraction across
// jobs.
type ThresholdSummary struct {
	Methods    []string
	Thresholds []time.Duration
	// Median[i][j] is the median uncertain fraction of Methods[i] at
	// Thresholds[j] across all jobs.
	Median [][]float64
	Jobs   int
}

// AcrossJobs runs the named methods over the given setups and aggregates
// median uncertain space at the thresholds.
func (l *Lab) AcrossJobs(setups []*Setup, names []string, points int, thresholds []time.Duration, seed int64) (ThresholdSummary, error) {
	sum := ThresholdSummary{Methods: names, Thresholds: thresholds, Jobs: len(setups)}
	// perMethod[i][j] collects per-job uncertain fractions.
	per := make([][][]float64, len(names))
	for i := range per {
		per[i] = make([][]float64, len(thresholds))
	}
	for jobIdx, setup := range setups {
		results, err := l.CompareMethods(setup, names, points, seed+int64(jobIdx)*101)
		if err != nil {
			return sum, err
		}
		for i, r := range results {
			for j, th := range thresholds {
				per[i][j] = append(per[i][j], r.UncertainAt(th))
			}
		}
	}
	sum.Median = make([][]float64, len(names))
	for i := range names {
		sum.Median[i] = make([]float64, len(thresholds))
		for j := range thresholds {
			sum.Median[i][j] = median(per[i][j])
		}
	}
	return sum, nil
}

// Print writes the summary as a method × threshold table.
func (t ThresholdSummary) Print(w io.Writer) {
	fmt.Fprintf(w, "median uncertain space (%%) across %d jobs\n", t.Jobs)
	fmt.Fprintf(w, "%-8s", "method")
	for _, th := range t.Thresholds {
		fmt.Fprintf(w, " %9s", th)
	}
	fmt.Fprintln(w)
	for i, m := range t.Methods {
		fmt.Fprintf(w, "%-8s", m)
		for j := range t.Thresholds {
			fmt.Fprintf(w, " %9.1f", 100*t.Median[i][j])
		}
		fmt.Fprintln(w)
	}
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 1
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
