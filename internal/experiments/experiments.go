// Package experiments regenerates every table and figure of the paper's
// performance evaluation (§VI and Appendix C) on the simulated substrate:
//
//   - Expt 1 (Fig. 4): PF vs WS/NC/Evo/qEHVI/PESM on 258 batch workloads
//   - Expt 2 (Fig. 5, Fig. 8): the same on 63 streaming workloads, 2D and 3D
//   - Expt 3 (Fig. 6a–d): end-to-end vs OtterTune under accurate models
//   - Expt 4 (Fig. 6e–f, Fig. 9): the same under inaccurate learned models
//   - Expt 5 (Fig. 6g–h): model accuracy vs performance-improvement rate
//   - the §V solver table (MOGD vs the exact Knitro stand-in) and the
//     headline 2–50× speedup table
//
// Each experiment has a quick configuration (used by `go test -bench`) and a
// full configuration (cmd/udao-bench); both print the same row/series
// structure the paper's figures plot. Absolute numbers differ from the
// paper (the substrate is a simulator, not the authors' 20-node cluster);
// EXPERIMENTS.md records the shape comparison.
package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/bench/stream"
	"repro/internal/bench/tpcxbb"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/model/dnn"
	"repro/internal/model/gp"
	"repro/internal/modelserver"
	"repro/internal/moo"
	"repro/internal/objective"
	"repro/internal/problem"
	"repro/internal/solver/mogd"
	"repro/internal/space"
	"repro/internal/spark"
	"repro/internal/trace"
)

// ModelKind selects the learned model family for an experiment.
type ModelKind int

// Model families.
const (
	KindGP ModelKind = iota
	KindDNN
)

// String implements fmt.Stringer.
func (k ModelKind) String() string {
	if k == KindDNN {
		return "DNN"
	}
	return "GP"
}

// Objective names shared across experiments.
const (
	ObjLatency    = "latency"
	ObjCores      = "cores"
	ObjCost2      = "cost2"
	ObjThroughput = "throughput"
)

// Lab caches trained models and traces so experiments and benchmarks do not
// repeat the expensive sampling/training work.
type Lab struct {
	mu    sync.Mutex
	cache map[string]*Setup

	// Cluster is the simulated hardware (DefaultCluster by default).
	Cluster spark.Cluster
	// Samples is the per-workload training-sample count (default 60 — the
	// paper samples "100's" per offline workload; 60 keeps benches fast
	// while giving WMAPE comparable to the paper's error rates).
	Samples int
	// DNNCfg and GPCfg configure model training.
	DNNCfg dnn.Config
	GPCfg  gp.Config
	Seed   int64
}

// NewLab builds a lab with defaults tuned for experiment throughput.
func NewLab(seed int64) *Lab {
	return &Lab{
		cache:   map[string]*Setup{},
		Cluster: spark.DefaultCluster(),
		Samples: 60,
		DNNCfg:  dnn.Config{Hidden: []int{48, 48}, Epochs: 120},
		GPCfg:   gp.Config{MLEIters: 40},
		Seed:    seed,
	}
}

// Setup is everything an experiment needs for one workload: minimization
// models, the shared objective-space box against which uncertain space is
// measured, the training traces, and a hook to measure a configuration on
// the simulator ("actual" values).
type Setup struct {
	Workload string
	Space    *space.Space
	// Models are minimization-oriented (throughput negated), ordered as
	// Names.
	Models []model.Model
	Names  []string
	// Utopia and Nadir bound the objective space for uncertain-space
	// measurements, derived from a Halton sweep of the models.
	Utopia, Nadir objective.Point
	// Entries are the training traces.
	Entries []trace.Entry
	// Measure runs a configuration on the simulator and returns the true
	// objective values (same orientation as Models).
	Measure func(conf space.Values) (objective.Point, error)
	// DefaultConf is the platform default configuration.
	DefaultConf space.Values
	// ExpertConf is the Expt-5 manual expert configuration.
	ExpertConf space.Values
}

// batchRunner builds a trace.Runner for a batch workload.
func (l *Lab) batchRunner(w tpcxbb.Workload, spc *space.Space) trace.Runner {
	return func(conf space.Values, seed int64) (map[string]float64, []float64, error) {
		m, err := spark.Run(w.Flow, spc, conf, l.Cluster, seed)
		if err != nil {
			return nil, nil, err
		}
		return map[string]float64{
			ObjLatency: m.LatencySec,
			ObjCores:   m.Cores,
			ObjCost2:   m.Cost2(),
		}, m.TraceVector(), nil
	}
}

// coresModel is the exact analytic model for the cost-in-cores objective
// (the paper's cost1 is "certain": it is a known function of the knobs).
func coresModel(spc *space.Space) model.Model {
	return model.Func{D: spc.Dim(), F: func(x []float64) float64 {
		vals, err := spc.Decode(x)
		if err != nil {
			return 0
		}
		inst, _ := spc.Get(vals, spark.KnobInstances)
		cores, _ := spc.Get(vals, spark.KnobCores)
		return inst * cores
	}}
}

// BatchSetup returns (cached) models and plumbing for batch workload id with
// objectives (latency, cores). secondCost2 replaces cores with the learned
// composite cost2 objective.
func (l *Lab) BatchSetup(id int, kind ModelKind, useCost2 bool) (*Setup, error) {
	key := fmt.Sprintf("batch-%d-%v-%v", id, kind, useCost2)
	l.mu.Lock()
	if s, ok := l.cache[key]; ok {
		l.mu.Unlock()
		return s, nil
	}
	l.mu.Unlock()

	w := tpcxbb.ByID(id)
	spc := spark.BatchSpace()
	runner := l.batchRunner(w, spc)

	st := trace.NewStore()
	rng := rand.New(rand.NewSource(l.Seed + int64(id)*97))
	confs, err := trace.HeuristicSample(spc, spark.DefaultBatchConf(spc), l.Samples, rng)
	if err != nil {
		return nil, err
	}
	if err := trace.Collect(st, spc, w.Flow.Name, confs, runner, l.Seed); err != nil {
		return nil, err
	}

	msKind := modelserver.GP
	if kind == KindDNN {
		msKind = modelserver.DNN
	}
	srv := modelserver.New(spc, st, modelserver.Config{Kind: msKind, DNNCfg: l.DNNCfg, GPCfg: l.GPCfg, LogTargets: true})
	latModel, err := srv.Model(w.Flow.Name, ObjLatency)
	if err != nil {
		return nil, err
	}

	names := []string{ObjLatency, ObjCores}
	models := []model.Model{latModel, coresModel(spc)}
	if useCost2 {
		c2, err := srv.Model(w.Flow.Name, ObjCost2)
		if err != nil {
			return nil, err
		}
		names[1] = ObjCost2
		models[1] = c2
	}

	setup := &Setup{
		Workload:    w.Flow.Name,
		Space:       spc,
		Models:      models,
		Names:       names,
		Entries:     st.ForWorkload(w.Flow.Name),
		DefaultConf: spark.DefaultBatchConf(spc),
		ExpertConf:  spark.ExpertConfig(spc, w.Flow),
	}
	setup.Utopia, setup.Nadir = modelBox(models, spc, 256)
	setup.Measure = func(conf space.Values) (objective.Point, error) {
		m, err := spark.Run(w.Flow, spc, conf, l.Cluster, l.Seed+555)
		if err != nil {
			return nil, err
		}
		second := m.Cores
		if useCost2 {
			second = m.Cost2()
		}
		return objective.Point{m.LatencySec, second}, nil
	}

	l.mu.Lock()
	l.cache[key] = setup
	l.mu.Unlock()
	return setup, nil
}

// StreamSetup returns models for streaming workload id: 2D (latency,
// −throughput) or 3D (+cores).
func (l *Lab) StreamSetup(id int, kind ModelKind, threeD bool) (*Setup, error) {
	key := fmt.Sprintf("stream-%d-%v-%v", id, kind, threeD)
	l.mu.Lock()
	if s, ok := l.cache[key]; ok {
		l.mu.Unlock()
		return s, nil
	}
	l.mu.Unlock()

	w := stream.ByID(id)
	spc := spark.StreamSpace()
	runner := func(conf space.Values, seed int64) (map[string]float64, []float64, error) {
		m, err := stream.Run(w, spc, conf, l.Cluster, seed)
		if err != nil {
			return nil, nil, err
		}
		return map[string]float64{
			ObjLatency:    m.LatencySec,
			ObjThroughput: m.Throughput,
			ObjCores:      m.Cores,
		}, m.TraceVector(), nil
	}

	st := trace.NewStore()
	rng := rand.New(rand.NewSource(l.Seed + int64(id)*89 + 7))
	confs, err := trace.HeuristicSample(spc, spark.DefaultStreamConf(spc), l.Samples, rng)
	if err != nil {
		return nil, err
	}
	if err := trace.Collect(st, spc, w.Tmpl.Name, confs, runner, l.Seed); err != nil {
		return nil, err
	}

	msKind := modelserver.GP
	if kind == KindDNN {
		msKind = modelserver.DNN
	}
	srv := modelserver.New(spc, st, modelserver.Config{Kind: msKind, DNNCfg: l.DNNCfg, GPCfg: l.GPCfg, LogTargets: true})
	latModel, err := srv.Model(w.Tmpl.Name, ObjLatency)
	if err != nil {
		return nil, err
	}
	thrModel, err := srv.Model(w.Tmpl.Name, ObjThroughput)
	if err != nil {
		return nil, err
	}

	names := []string{ObjLatency, ObjThroughput}
	models := []model.Model{latModel, model.Negated{M: thrModel}}
	if threeD {
		names = append(names, ObjCores)
		models = append(models, coresModel(spc))
	}

	setup := &Setup{
		Workload:    w.Tmpl.Name,
		Space:       spc,
		Models:      models,
		Names:       names,
		Entries:     st.ForWorkload(w.Tmpl.Name),
		DefaultConf: spark.DefaultStreamConf(spc),
	}
	setup.Utopia, setup.Nadir = modelBox(models, spc, 256)
	setup.Measure = func(conf space.Values) (objective.Point, error) {
		m, err := stream.Run(w, spc, conf, l.Cluster, l.Seed+555)
		if err != nil {
			return nil, err
		}
		p := objective.Point{m.LatencySec, -m.Throughput}
		if threeD {
			p = append(p, m.Cores)
		}
		return p, nil
	}

	l.mu.Lock()
	l.cache[key] = setup
	l.mu.Unlock()
	return setup, nil
}

// modelBox sweeps the models over a Halton sample of the lattice to bound
// the objective space — the shared box all methods' uncertain-space
// measurements use. The sweep runs through a batch evaluator, so the sample
// is computed in parallel and lattice collisions from rounding hit the memo.
func modelBox(models []model.Model, spc *space.Space, samples int) (utopia, nadir objective.Point) {
	ev := problem.NewEvaluator(problem.MustNew(models, spc), problem.Options{})
	var xs [][]float64
	x := make([]float64, spc.Dim())
	for i := 0; i < samples; i++ {
		for d := range x {
			x[d] = haltonAt(i, d)
		}
		rx, err := spc.Round(x)
		if err != nil {
			continue
		}
		xs = append(xs, rx)
	}
	return objective.Bounds(ev.EvalBatch(xs))
}

var haltonPrimes = []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71}

func haltonAt(i, d int) float64 {
	base := haltonPrimes[d%len(haltonPrimes)]
	f, r := 1.0, 0.0
	for n := i + 1; n > 0; n /= base {
		f /= float64(base)
		r += f * float64(n%base)
	}
	return r
}

// SeriesPoint is one sample of a method's uncertain-space trajectory.
type SeriesPoint struct {
	Elapsed   time.Duration
	Uncertain float64
	Points    int
}

// MethodResult is one method's run on one workload.
type MethodResult struct {
	Method      string
	Series      []SeriesPoint
	Frontier    []objective.Point
	TimeToFirst time.Duration // time to the first non-empty frontier
	Total       time.Duration
}

// UncertainAt interpolates the uncertain fraction at elapsed time t
// (step-wise: the value of the latest snapshot at or before t; 1.0 before
// the first).
func (r MethodResult) UncertainAt(t time.Duration) float64 {
	u := 1.0
	for _, p := range r.Series {
		if p.Elapsed > t {
			break
		}
		u = p.Uncertain
	}
	return u
}

// solutionsToPoints extracts objective points.
func solutionsToPoints(sols []objective.Solution) []objective.Point {
	out := make([]objective.Point, len(sols))
	for i := range sols {
		out[i] = sols[i].F
	}
	return out
}

// RunPF runs PF-AP (parallel=true) or PF-AS on the setup, recording the
// uncertain-space trajectory against the setup's shared box.
func (l *Lab) RunPF(setup *Setup, parallel bool, probes int, seed int64) (MethodResult, error) {
	solver, err := mogd.New(
		mogd.Problem{Objectives: setup.Models, Space: setup.Space},
		mogd.Config{Starts: 6, Iters: 80, Seed: seed},
	)
	if err != nil {
		return MethodResult{}, err
	}
	name := "PF-AS"
	if parallel {
		name = "PF-AP"
	}
	res := MethodResult{Method: name}
	opt := core.Options{
		Probes: probes,
		Seed:   seed,
		OnProgress: func(s core.Snapshot) {
			u := metrics.UncertainFraction(solutionsToPoints(s.Frontier), setup.Utopia, setup.Nadir)
			res.Series = append(res.Series, SeriesPoint{Elapsed: s.Elapsed, Uncertain: u, Points: len(s.Frontier)})
			if res.TimeToFirst == 0 && len(s.Frontier) > 0 {
				res.TimeToFirst = s.Elapsed
			}
		},
	}
	start := time.Now()
	var front []objective.Solution
	if parallel {
		front, err = core.Parallel(solver, opt)
	} else {
		front, err = core.Sequential(solver, opt)
	}
	if err != nil {
		return MethodResult{}, err
	}
	res.Total = time.Since(start)
	res.Frontier = solutionsToPoints(front)
	return res, nil
}

// RunBaseline runs an incremental moo baseline (one that legitimately emits
// growing frontiers as it works, like qEHVI's one-point-at-a-time loop),
// recording its trajectory.
func (l *Lab) RunBaseline(setup *Setup, m moo.Method, points int, seed int64) (MethodResult, error) {
	res := MethodResult{Method: m.Name()}
	start := time.Now()
	front, err := m.Run(moo.Options{
		Points: points,
		Seed:   seed,
		OnProgress: func(elapsed time.Duration, frontier []objective.Solution) {
			u := metrics.UncertainFraction(solutionsToPoints(frontier), setup.Utopia, setup.Nadir)
			res.Series = append(res.Series, SeriesPoint{Elapsed: elapsed, Uncertain: u, Points: len(frontier)})
			if res.TimeToFirst == 0 && len(frontier) > 0 {
				res.TimeToFirst = elapsed
			}
		},
	})
	if err != nil {
		return MethodResult{}, err
	}
	res.Total = time.Since(start)
	res.Frontier = solutionsToPoints(front)
	return res, nil
}

// RunLadder reruns a restart-based baseline at increasing probe budgets,
// charging cumulative wall-clock — the paper's protocol for WS, NC, Evo and
// PESM (§VI-A: each is "requested to generate increasingly more Pareto
// points (10, 20, ..., 200) as more computing time is invested"; NC in
// particular must restart from scratch for a larger point count). A frontier
// exists only when a rung completes.
func (l *Lab) RunLadder(setup *Setup, factory func() moo.Method, points int, seed int64) (MethodResult, error) {
	budgets := ladderBudgets(points)
	var res MethodResult
	var cumulative time.Duration
	for i, b := range budgets {
		m := factory()
		if res.Method == "" {
			res.Method = m.Name()
		}
		start := time.Now()
		front, err := m.Run(moo.Options{Points: b, Seed: seed + int64(i)*977})
		if err != nil {
			return MethodResult{}, err
		}
		cumulative += time.Since(start)
		pts := solutionsToPoints(front)
		u := metrics.UncertainFraction(pts, setup.Utopia, setup.Nadir)
		res.Series = append(res.Series, SeriesPoint{Elapsed: cumulative, Uncertain: u, Points: len(pts)})
		if res.TimeToFirst == 0 && len(pts) > 0 {
			res.TimeToFirst = cumulative
		}
		res.Frontier = pts
	}
	res.Total = cumulative
	return res, nil
}

// ladderBudgets scales the paper's 10/20/30/40/50 probe ladder to the
// requested maximum.
func ladderBudgets(points int) []int {
	if points <= 2 {
		return []int{points}
	}
	fracs := []float64{0.2, 0.4, 0.6, 0.8, 1}
	var out []int
	prev := 0
	for _, f := range fracs {
		b := int(float64(points)*f + 0.5)
		if b < 2 {
			b = 2
		}
		if b > prev {
			out = append(out, b)
			prev = b
		}
	}
	return out
}
