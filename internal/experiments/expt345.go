package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/bench/tpcxbb"
	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/ottertune"
	"repro/internal/recommend"
	"repro/internal/solver/mogd"
	"repro/internal/space"
	"repro/internal/trace"
)

// E2ERow is one workload's end-to-end comparison between UDAO (PF + WUN) and
// OtterTune (Expts 3–5, Fig. 6 and Fig. 9).
type E2ERow struct {
	Workload string
	Weights  [2]float64
	// Configurations recommended by each system.
	UdaoConf, OtterConf space.Values
	// Model-predicted (latency, cost) at the recommendations.
	UdaoPred, OtterPred objective.Point
	// Measured (latency, cost) on the simulator.
	UdaoActual, OtterActual objective.Point
	// ExpertActual is the manual expert configuration's measurement.
	ExpertActual objective.Point
	// DefaultLatency classifies the workload for workload-aware WUN.
	DefaultLatency float64
}

// historyFor assembles OtterTune's historical traces: the three sibling
// workloads of the target's template at other scales (the "past queries" its
// workload mapping searches).
func (l *Lab) historyFor(id int, kind ModelKind, useCost2 bool) (*trace.Store, error) {
	st := trace.NewStore()
	for k := 1; k <= 3; k++ {
		sib := (id + 30*k) % tpcxbb.NumWorkloads
		setup, err := l.BatchSetup(sib, kind, useCost2)
		if err != nil {
			return nil, err
		}
		for _, e := range setup.Entries {
			st.Add(e)
		}
	}
	return st, nil
}

// udaoRecommend runs PF-AP over the setup's models and picks a plan with
// workload-aware WUN.
func (l *Lab) udaoRecommend(setup *Setup, weights [2]float64, class recommend.WorkloadClass, seed int64) (space.Values, objective.Point, error) {
	solver, err := mogd.New(
		mogd.Problem{Objectives: setup.Models, Space: setup.Space},
		mogd.Config{Starts: 6, Iters: 80, Seed: seed},
	)
	if err != nil {
		return nil, nil, err
	}
	front, err := core.Parallel(solver, core.Options{Probes: 30, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	sol, err := recommend.WorkloadAwareWUN(front, weights[:], class)
	if err != nil {
		return nil, nil, err
	}
	conf, err := setup.Space.Decode(sol.X)
	if err != nil {
		return nil, nil, err
	}
	return conf, sol.F, nil
}

// EndToEnd runs Expt 3/4's per-workload comparison: UDAO with kind-model
// objectives vs OtterTune with GP models, both asked for the same weighted
// preference, then measured on the simulator.
func (l *Lab) EndToEnd(ids []int, kind ModelKind, useCost2 bool, weights [2]float64, seed int64) ([]E2ERow, error) {
	rows := make([]E2ERow, 0, len(ids))
	for _, id := range ids {
		setup, err := l.BatchSetup(id, kind, useCost2)
		if err != nil {
			return nil, err
		}
		// Workload class from the default-configuration latency.
		defPoint, err := setup.Measure(setup.DefaultConf)
		if err != nil {
			return nil, err
		}
		class := recommend.Classify(defPoint[0], 10, 60)

		udaoConf, udaoPred, err := l.udaoRecommend(setup, weights, class, seed+int64(id))
		if err != nil {
			return nil, err
		}

		// OtterTune: GP models over mapped history + 10 target observations.
		hist, err := l.historyFor(id, KindGP, useCost2)
		if err != nil {
			return nil, err
		}
		obs := setup.Entries
		if len(obs) > 10 {
			obs = obs[:10]
		}
		tuner := &ottertune.Tuner{Spc: setup.Space, History: hist, GPCfg: l.GPCfg, Candidates: 1024, Seed: seed + int64(id)}
		costName := ObjCores
		if useCost2 {
			costName = ObjCost2
		}
		otterConf, gps, err := tuner.Recommend(obs, []string{ObjLatency, costName}, weights[:])
		if err != nil {
			return nil, err
		}
		otterX, err := setup.Space.Encode(otterConf)
		if err != nil {
			return nil, err
		}
		otterPred := objective.Point{gps[0].Predict(otterX), gps[1].Predict(otterX)}

		udaoActual, err := setup.Measure(udaoConf)
		if err != nil {
			return nil, err
		}
		otterActual, err := setup.Measure(otterConf)
		if err != nil {
			return nil, err
		}
		expertActual, err := setup.Measure(setup.ExpertConf)
		if err != nil {
			return nil, err
		}

		rows = append(rows, E2ERow{
			Workload:       setup.Workload,
			Weights:        weights,
			UdaoConf:       udaoConf,
			OtterConf:      otterConf,
			UdaoPred:       udaoPred,
			OtterPred:      otterPred,
			UdaoActual:     udaoActual,
			OtterActual:    otterActual,
			ExpertActual:   expertActual,
			DefaultLatency: defPoint[0],
		})
	}
	return rows, nil
}

// WriteFig6 prints the per-job comparison in the style of Fig. 6: the
// slower system's latency normalized to 100%.
func WriteFig6(w io.Writer, rows []E2ERow, measured bool) {
	fmt.Fprintf(w, "%-14s %10s %10s %10s %10s %12s\n",
		"workload", "udao-lat%", "otter-lat%", "udao-cost", "otter-cost", "udao-saves%")
	for _, r := range rows {
		u, o := r.UdaoPred, r.OtterPred
		if measured {
			u, o = r.UdaoActual, r.OtterActual
		}
		slow := math.Max(u[0], o[0])
		if slow <= 0 {
			slow = 1
		}
		fmt.Fprintf(w, "%-14s %10.1f %10.1f %10.1f %10.1f %12.1f\n",
			r.Workload, 100*u[0]/slow, 100*o[0]/slow, u[1], o[1], 100*(o[0]-u[0])/o[0])
	}
}

// Fig6Summary aggregates the end-to-end rows: total running time of the
// benchmark under each system and the reduction UDAO achieves — the paper's
// 26%–49% headline.
type Fig6Summary struct {
	UdaoTotalLat, OtterTotalLat   float64
	UdaoTotalCost, OtterTotalCost float64
	ReductionPct                  float64
	Dominated                     int // jobs where UDAO beats OtterTune in both objectives
}

// Summarize computes the aggregate over measured values.
func Summarize(rows []E2ERow) Fig6Summary {
	var s Fig6Summary
	for _, r := range rows {
		s.UdaoTotalLat += r.UdaoActual[0]
		s.OtterTotalLat += r.OtterActual[0]
		s.UdaoTotalCost += r.UdaoActual[1]
		s.OtterTotalCost += r.OtterActual[1]
		if r.UdaoActual[0] < r.OtterActual[0] && r.UdaoActual[1] <= r.OtterActual[1] {
			s.Dominated++
		}
	}
	if s.OtterTotalLat > 0 {
		s.ReductionPct = 100 * (s.OtterTotalLat - s.UdaoTotalLat) / s.OtterTotalLat
	}
	return s
}

// TopLongRunning returns the n rows with the largest measured UDAO latency,
// in decreasing order — the "top 12 long-running jobs" of Fig. 6(e).
func TopLongRunning(rows []E2ERow, n int) []E2ERow {
	sorted := append([]E2ERow(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool {
		return math.Max(sorted[i].UdaoActual[0], sorted[i].OtterActual[0]) >
			math.Max(sorted[j].UdaoActual[0], sorted[j].OtterActual[0])
	})
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}

// PIRPoint is one (model error, performance improvement) sample of
// Fig. 6(g)/(h).
type PIRPoint struct {
	System string
	APE    float64 // |predicted − actual| / actual latency
	PIR    float64 // (expert − actual) / expert latency
}

// PIRAnalysis is Expt 5's output.
type PIRAnalysis struct {
	Points []PIRPoint
	// MeanAPE and NegativeCount per system.
	UdaoMeanAPE, OtterMeanAPE   float64
	UdaoNegative, OtterNegative int
	UdaoCount, OtterCount       int
}

// AnalyzePIR derives the Expt-5 scatter from end-to-end rows (collected
// across weights and cost metrics; the paper uses 120 configurations per
// system).
func AnalyzePIR(rowSets ...[]E2ERow) PIRAnalysis {
	var out PIRAnalysis
	var udaoNum, udaoDen, otterNum, otterDen float64
	for _, rows := range rowSets {
		for _, r := range rows {
			expert := r.ExpertActual[0]
			if expert <= 0 {
				continue
			}
			up := PIRPoint{System: "UDAO",
				APE: math.Abs(r.UdaoPred[0]-r.UdaoActual[0]) / r.UdaoActual[0],
				PIR: (expert - r.UdaoActual[0]) / expert}
			op := PIRPoint{System: "Ottertune",
				APE: math.Abs(r.OtterPred[0]-r.OtterActual[0]) / r.OtterActual[0],
				PIR: (expert - r.OtterActual[0]) / expert}
			out.Points = append(out.Points, up, op)
			udaoNum += math.Abs(r.UdaoPred[0] - r.UdaoActual[0])
			udaoDen += r.UdaoActual[0]
			otterNum += math.Abs(r.OtterPred[0] - r.OtterActual[0])
			otterDen += r.OtterActual[0]
			out.UdaoCount++
			out.OtterCount++
			if up.PIR < 0 {
				out.UdaoNegative++
			}
			if op.PIR < 0 {
				out.OtterNegative++
			}
		}
	}
	if udaoDen > 0 {
		out.UdaoMeanAPE = udaoNum / udaoDen
	}
	if otterDen > 0 {
		out.OtterMeanAPE = otterNum / otterDen
	}
	return out
}

// Print writes the Expt-5 summary.
func (p PIRAnalysis) Print(w io.Writer) {
	fmt.Fprintf(w, "%-10s %12s %14s %8s\n", "system", "wmape(%)", "PIR<0 count", "configs")
	fmt.Fprintf(w, "%-10s %12.1f %11d/%d %8d\n", "UDAO", 100*p.UdaoMeanAPE, p.UdaoNegative, p.UdaoCount, p.UdaoCount)
	fmt.Fprintf(w, "%-10s %12.1f %11d/%d %8d\n", "Ottertune", 100*p.OtterMeanAPE, p.OtterNegative, p.OtterCount, p.OtterCount)
}

// StreamE2ERow is Expt 3's streaming comparison (Fig. 6(c)/(d)): latency vs
// throughput under accurate models.
type StreamE2ERow struct {
	Workload          string
	UdaoLat, OtterLat float64
	UdaoThr, OtterThr float64
}

// StreamEndToEnd compares PF-WUN against the OtterTune weighted method on
// streaming workloads with (latency, throughput) objectives, evaluated on
// the models (the accurate-model regime).
func (l *Lab) StreamEndToEnd(ids []int, weights [2]float64, seed int64) ([]StreamE2ERow, error) {
	rows := make([]StreamE2ERow, 0, len(ids))
	for _, id := range ids {
		setup, err := l.StreamSetup(id, KindGP, false)
		if err != nil {
			return nil, err
		}
		solver, err := mogd.New(
			mogd.Problem{Objectives: setup.Models, Space: setup.Space},
			mogd.Config{Starts: 6, Iters: 80, Seed: seed + int64(id)},
		)
		if err != nil {
			return nil, err
		}
		front, err := core.Parallel(solver, core.Options{Probes: 30, Seed: seed + int64(id)})
		if err != nil {
			return nil, err
		}
		sol, err := recommend.WeightedUtopiaNearest(front, weights[:])
		if err != nil {
			return nil, err
		}

		// OtterTune sees the same traces as one "historical" workload and
		// minimizes w1·lat − w2·thr via its GP search.
		hist := trace.NewStore()
		for _, e := range setup.Entries {
			hist.Add(e)
		}
		obs := setup.Entries
		if len(obs) > 10 {
			obs = obs[:10]
		}
		tuner := &ottertune.Tuner{Spc: setup.Space, History: hist, GPCfg: l.GPCfg, Candidates: 1024, Seed: seed + int64(id)}
		otterConf, gps, err := tuner.RecommendMaximize(obs, []string{ObjLatency, ObjThroughput}, weights[:], []bool{false, true})
		if err != nil {
			return nil, err
		}
		otterX, err := setup.Space.Encode(otterConf)
		if err != nil {
			return nil, err
		}
		rows = append(rows, StreamE2ERow{
			Workload: setup.Workload,
			UdaoLat:  sol.F[0],
			UdaoThr:  -sol.F[1],
			OtterLat: gps[0].Predict(otterX),
			OtterThr: gps[1].Predict(otterX),
		})
	}
	return rows, nil
}
