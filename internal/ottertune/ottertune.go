// Package ottertune reimplements the behaviour of OtterTune [35] that the
// paper compares against (§VI-B): a single-objective, GP-based tuner with
// workload mapping. Given a handful of observations of the target workload,
// it (1) maps the target onto the most similar historical workload by
// Euclidean distance over standardized runtime-metric vectors at matching
// configurations — OtterTune's signature "map a new query against all past
// queries" step; (2) fits one Gaussian process per objective on the mapped
// workload's traces augmented with the target's own observations; and
// (3) minimizes the single weighted objective Σ wᵢ·Ψ̂ᵢ(x) (the weighted
// method of [39] the paper applies, since OtterTune cannot do MOO) over the
// GP posterior by lattice candidate search with coordinate refinement.
package ottertune

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/feature"
	"repro/internal/model"
	"repro/internal/model/dnn"
	"repro/internal/model/gp"
	"repro/internal/objective"
	"repro/internal/problem"
	"repro/internal/space"
	"repro/internal/trace"
)

// Tuner is an OtterTune-style single-objective recommender.
type Tuner struct {
	Spc     *space.Space
	History *trace.Store // traces of past (training) workloads
	GPCfg   gp.Config
	// Candidates is the GP-search budget (default 2048).
	Candidates int
	// RefineSteps is the per-dimension resolution of the local coordinate
	// refinement around the best candidate (default 16).
	RefineSteps int
	// Encoder, when set, maps workloads by comparing learned metric
	// embeddings instead of standardized raw metrics — the workload-encoding
	// extension of [38].
	Encoder *dnn.Autoencoder
	Seed    int64
}

func (t *Tuner) defaults() {
	if t.Candidates == 0 {
		t.Candidates = 2048
	}
	if t.RefineSteps == 0 {
		t.RefineSteps = 16
	}
}

// MapWorkload returns the historical workload most similar to the target
// observations: for every target observation the closest historical
// configuration (per candidate workload) is found and the metric vectors
// compared — standardized raw metrics by default, learned autoencoder
// embeddings when Encoder is set; the workload with the smallest mean metric
// distance wins.
func (t *Tuner) MapWorkload(obs []trace.Entry) (string, error) {
	workloads := t.History.Workloads()
	if len(workloads) == 0 {
		return "", fmt.Errorf("ottertune: empty history")
	}
	if len(obs) == 0 {
		return "", fmt.Errorf("ottertune: no target observations")
	}
	var std func(v []float64) []float64
	if t.Encoder != nil {
		std = t.Encoder.Embed
	} else {
		// Standardize metrics over the whole history + target for
		// comparability.
		var all [][]float64
		for _, w := range workloads {
			for _, e := range t.History.ForWorkload(w) {
				all = append(all, e.Metrics)
			}
		}
		for _, e := range obs {
			all = append(all, e.Metrics)
		}
		_, means, stds := feature.Standardize(all)
		std = func(v []float64) []float64 {
			out := make([]float64, len(v))
			for i := range v {
				out[i] = (v[i] - means[i]) / stds[i]
			}
			return out
		}
	}

	bestW, bestD := "", math.Inf(1)
	for _, w := range workloads {
		entries := t.History.ForWorkload(w)
		if len(entries) == 0 {
			continue
		}
		total := 0.0
		for _, o := range obs {
			// Closest historical configuration in the decision space.
			var nearest *trace.Entry
			nd := math.Inf(1)
			for i := range entries {
				d := dist2(entries[i].X, o.X)
				if d < nd {
					nd = d
					nearest = &entries[i]
				}
			}
			sm := std(nearest.Metrics)
			so := std(o.Metrics)
			total += math.Sqrt(dist2(sm, so))
		}
		if avg := total / float64(len(obs)); avg < bestD {
			bestD = avg
			bestW = w
		}
	}
	return bestW, nil
}

func dist2(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Recommend returns the configuration minimizing the weighted combination of
// the objectives, Σ wᵢ·Ψ̂ᵢ(x), over GPs trained on the mapped workload's
// traces plus the target observations. It also returns the per-objective
// models (used by the experiments to ask OtterTune for its own predictions).
func (t *Tuner) Recommend(obs []trace.Entry, objectives []string, weights []float64) (space.Values, []model.Model, error) {
	return t.RecommendMaximize(obs, objectives, weights, make([]bool, len(objectives)))
}

// RecommendMaximize is Recommend with a per-objective orientation mask:
// maximize[j] objectives contribute −wⱼ·Ψ̂ⱼ to the scalarized score (used
// for streaming throughput).
func (t *Tuner) RecommendMaximize(obs []trace.Entry, objectives []string, weights []float64, maximize []bool) (space.Values, []model.Model, error) {
	t.defaults()
	if len(objectives) != len(weights) || len(objectives) != len(maximize) {
		return nil, nil, fmt.Errorf("ottertune: %d objectives vs %d weights vs %d orientations", len(objectives), len(weights), len(maximize))
	}
	mapped, err := t.MapWorkload(obs)
	if err != nil {
		return nil, nil, err
	}
	training := append([]trace.Entry(nil), t.History.ForWorkload(mapped)...)
	training = append(training, obs...)

	gps := make([]model.Model, len(objectives))
	lo := make([]float64, len(objectives))
	hi := make([]float64, len(objectives))
	for j, objName := range objectives {
		X := make([][]float64, 0, len(training))
		y := make([]float64, 0, len(training))
		lo[j], hi[j] = math.Inf(1), math.Inf(-1)
		logScale := true
		for _, e := range training {
			v, ok := e.Objectives[objName]
			if !ok {
				return nil, nil, fmt.Errorf("ottertune: trace missing objective %q", objName)
			}
			X = append(X, e.X)
			y = append(y, v)
			lo[j] = math.Min(lo[j], v)
			hi[j] = math.Max(hi[j], v)
			if v <= 0 {
				logScale = false
			}
		}
		if hi[j] <= lo[j] {
			hi[j] = lo[j] + 1
		}
		// Positive objectives are modeled in log space (the same hygiene as
		// the UDAO model server), keeping GP extrapolations physical.
		ys := y
		if logScale {
			ys = make([]float64, len(y))
			for i, v := range y {
				ys[i] = math.Log(v)
			}
		}
		g, err := gp.Fit(X, ys, t.GPCfg)
		if err != nil {
			return nil, nil, fmt.Errorf("ottertune: GP for %s: %w", objName, err)
		}
		if logScale {
			gps[j] = model.Exp{M: g}
		} else {
			gps[j] = g
		}
	}

	// Candidate scoring goes through a problem.Evaluator over the fitted GPs:
	// the same seam every other optimizer uses, which memoizes the
	// lattice-rounded candidates the refinement sweeps revisit.
	p, err := problem.New(gps, t.Spc)
	if err != nil {
		return nil, nil, fmt.Errorf("ottertune: %w", err)
	}
	ev := problem.NewEvaluator(p, problem.Options{})
	f := make(objective.Point, len(gps))
	score := func(x []float64) float64 {
		ev.EvalInto(x, f)
		s := 0.0
		for j := range gps {
			normalized := (f[j] - lo[j]) / (hi[j] - lo[j])
			if maximize[j] {
				s -= weights[j] * normalized
			} else {
				s += weights[j] * normalized
			}
		}
		return s
	}

	rng := rand.New(rand.NewSource(t.Seed))
	var bestX []float64
	bestS := math.Inf(1)
	try := func(x []float64) {
		rx, err := t.Spc.Round(x)
		if err != nil {
			return
		}
		if s := score(rx); s < bestS {
			bestS = s
			bestX = rx
		}
	}
	// Seed with the observed configurations, then the random sweep.
	for _, o := range obs {
		try(o.X)
	}
	x := make([]float64, t.Spc.Dim())
	for c := 0; c < t.Candidates; c++ {
		for d := range x {
			x[d] = rng.Float64()
		}
		try(x)
	}
	// Coordinate refinement.
	for pass := 0; pass < 2; pass++ {
		for d := 0; d < t.Spc.Dim(); d++ {
			base := append([]float64(nil), bestX...)
			for step := 0; step <= t.RefineSteps; step++ {
				base[d] = float64(step) / float64(t.RefineSteps)
				try(base)
			}
		}
	}
	conf, err := t.Spc.Decode(bestX)
	if err != nil {
		return nil, nil, err
	}
	return conf, gps, nil
}
