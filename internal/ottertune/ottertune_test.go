package ottertune

import (
	"math/rand"
	"testing"

	"repro/internal/model/dnn"

	"repro/internal/space"
	"repro/internal/spark"
	"repro/internal/trace"
)

// flows: two distinct workload shapes — CPU-light aggregation vs UDF-heavy.
func flows() map[string]*spark.Dataflow {
	agg := spark.Chain("agg", 3e6, 100,
		spark.Operator{Kind: spark.OpScan, Selectivity: 1, CostPerRow: 1},
		spark.Operator{Kind: spark.OpExchange, Selectivity: 1, CostPerRow: 0.1},
		spark.Operator{Kind: spark.OpAggregate, Selectivity: 0.01, CostPerRow: 0.5, MemPerRow: 64},
	)
	udf := spark.Chain("udf", 2e6, 120,
		spark.Operator{Kind: spark.OpScan, Selectivity: 1, CostPerRow: 0.5},
		spark.Operator{Kind: spark.OpExchange, Selectivity: 1, CostPerRow: 0.1},
		spark.Operator{Kind: spark.OpUDF, Selectivity: 0.8, CostPerRow: 6, MemPerRow: 96},
	)
	return map[string]*spark.Dataflow{"agg": agg, "udf": udf}
}

func runner(spc *space.Space, df *spark.Dataflow) trace.Runner {
	cl := spark.DefaultCluster()
	return func(conf space.Values, seed int64) (map[string]float64, []float64, error) {
		m, err := spark.Run(df, spc, conf, cl, seed)
		if err != nil {
			return nil, nil, err
		}
		return map[string]float64{"latency": m.LatencySec, "cores": m.Cores}, m.TraceVector(), nil
	}
}

func buildTuner(t *testing.T) (*Tuner, *space.Space, map[string]*spark.Dataflow) {
	t.Helper()
	spc := spark.BatchSpace()
	hist := trace.NewStore()
	rng := rand.New(rand.NewSource(1))
	for name, df := range flows() {
		confs, err := trace.HeuristicSample(spc, spark.DefaultBatchConf(spc), 40, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.Collect(hist, spc, name, confs, runner(spc, df), 1); err != nil {
			t.Fatal(err)
		}
	}
	return &Tuner{Spc: spc, History: hist, Candidates: 512, Seed: 2}, spc, flows()
}

// observe samples a few configurations of the target flow (the paper's 6–30
// online samples).
func observe(t *testing.T, spc *space.Space, df *spark.Dataflow, n int) []trace.Entry {
	t.Helper()
	st := trace.NewStore()
	rng := rand.New(rand.NewSource(9))
	confs, err := trace.HeuristicSample(spc, spark.DefaultBatchConf(spc), n, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Collect(st, spc, "target", confs, runner(spc, df), 5); err != nil {
		t.Fatal(err)
	}
	return st.ForWorkload("target")
}

func TestMapWorkloadPicksSimilar(t *testing.T) {
	tuner, spc, fs := buildTuner(t)
	// Target: a slightly scaled copy of the UDF flow — must map to "udf".
	target := spark.Chain("target", 2.2e6, 120,
		spark.Operator{Kind: spark.OpScan, Selectivity: 1, CostPerRow: 0.5},
		spark.Operator{Kind: spark.OpExchange, Selectivity: 1, CostPerRow: 0.1},
		spark.Operator{Kind: spark.OpUDF, Selectivity: 0.8, CostPerRow: 6.5, MemPerRow: 96},
	)
	obs := observe(t, spc, target, 8)
	mapped, err := tuner.MapWorkload(obs)
	if err != nil {
		t.Fatal(err)
	}
	if mapped != "udf" {
		t.Fatalf("mapped to %q, want udf", mapped)
	}
	_ = fs
}

func TestMapWorkloadErrors(t *testing.T) {
	spc := spark.BatchSpace()
	tuner := &Tuner{Spc: spc, History: trace.NewStore()}
	if _, err := tuner.MapWorkload(nil); err == nil {
		t.Fatal("expected error for empty history")
	}
	tuner2, _, _ := buildTuner(t)
	if _, err := tuner2.MapWorkload(nil); err == nil {
		t.Fatal("expected error for no observations")
	}
}

func TestRecommendReducesWeightedObjective(t *testing.T) {
	tuner, spc, fs := buildTuner(t)
	df := fs["agg"]
	obs := observe(t, spc, df, 10)
	conf, gps, err := tuner.Recommend(obs, []string{"latency", "cores"}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(gps) != 2 {
		t.Fatalf("gps = %d", len(gps))
	}
	// Measure the recommendation and compare against the default config.
	run := runner(spc, df)
	rec, _, err := run(conf, 100)
	if err != nil {
		t.Fatal(err)
	}
	def, _, err := run(spark.DefaultBatchConf(spc), 100)
	if err != nil {
		t.Fatal(err)
	}
	// The weighted score (normalized by observed ranges) should not be
	// clearly worse than the default configuration's.
	score := func(m map[string]float64) float64 {
		return 0.5*m["latency"]/def["latency"] + 0.5*m["cores"]/def["cores"]
	}
	if score(rec) > score(def)*1.3 {
		t.Fatalf("recommendation much worse than default: %v vs %v", score(rec), score(def))
	}
}

func TestRecommendValidatesWeights(t *testing.T) {
	tuner, spc, fs := buildTuner(t)
	obs := observe(t, spc, fs["agg"], 5)
	if _, _, err := tuner.Recommend(obs, []string{"latency"}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("expected error for weight/objective mismatch")
	}
	if _, _, err := tuner.Recommend(obs, []string{"nope"}, []float64{1}); err == nil {
		t.Fatal("expected error for unknown objective")
	}
}

// TestWeightInsensitivity documents the paper's observation (Expt 3): for
// most jobs OtterTune's recommendation barely moves between (0.5,0.5) and
// (0.9,0.1) because the weighted method cannot trace the frontier.
func TestWeightInsensitivity(t *testing.T) {
	tuner, spc, fs := buildTuner(t)
	obs := observe(t, spc, fs["agg"], 10)
	confA, _, err := tuner.Recommend(obs, []string{"latency", "cores"}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	confB, _, err := tuner.Recommend(obs, []string{"latency", "cores"}, []float64{0.9, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	coresA, _ := spc.Get(confA, spark.KnobInstances)
	coresB, _ := spc.Get(confB, spark.KnobInstances)
	// Not a hard guarantee, but the recommendations should stay in the same
	// neighborhood (the paper found 19/30 identical at minimum cores).
	if diff := coresA - coresB; diff > 8 || diff < -8 {
		t.Logf("note: OtterTune moved executors %v -> %v across weights", coresA, coresB)
	}
}

// TestEncodedWorkloadMapping exercises the [38] extension: mapping via
// autoencoder embeddings of the metric vectors instead of raw metrics.
func TestEncodedWorkloadMapping(t *testing.T) {
	tuner, spc, _ := buildTuner(t)
	var metricRows [][]float64
	for _, w := range tuner.History.Workloads() {
		for _, e := range tuner.History.ForWorkload(w) {
			metricRows = append(metricRows, e.Metrics)
		}
	}
	enc, err := dnn.TrainAutoencoder(metricRows, 3, dnn.Config{Hidden: []int{16}, Epochs: 150, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tuner.Encoder = enc
	target := spark.Chain("target", 2.2e6, 120,
		spark.Operator{Kind: spark.OpScan, Selectivity: 1, CostPerRow: 0.5},
		spark.Operator{Kind: spark.OpExchange, Selectivity: 1, CostPerRow: 0.1},
		spark.Operator{Kind: spark.OpUDF, Selectivity: 0.8, CostPerRow: 6.5, MemPerRow: 96},
	)
	obs := observe(t, spc, target, 8)
	mapped, err := tuner.MapWorkload(obs)
	if err != nil {
		t.Fatal(err)
	}
	if mapped != "udf" {
		t.Fatalf("encoded mapping picked %q, want udf", mapped)
	}
}
