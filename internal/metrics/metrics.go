// Package metrics implements the evaluation measures of the paper's
// performance study (§VI): the uncertain-space percentage that Figures 4, 5
// and 8 track over time, the dominated-hypervolume indicator, and the
// frontier-consistency measure that exposes the Evo inconsistency of
// Fig. 4(e).
//
// All measures operate on minimization objective spaces bounded by a global
// [Utopia, Nadir] box. Given a set of (assumed Pareto-optimal) points P, the
// box splits into three parts: the region dominated by some p ∈ P (certainly
// not on the frontier), the region dominating some p ∈ P (certainly empty —
// otherwise p would not be Pareto optimal), and the rest, which remains
// uncertain. The uncertain fraction is the volume of that rest divided by
// the box volume.
package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strconv"

	"repro/internal/objective"
)

// BoxValid reports whether [utopia, nadir] is a usable reference box: equal
// non-zero dimensionality, all corners finite, and nadir no smaller than
// utopia on every axis. Zero-span axes (utopia[i] == nadir[i]) are allowed —
// Normalize maps them to 0. The quality measures return the NaN sentinel on
// an invalid box instead of silently producing garbage volumes.
func BoxValid(utopia, nadir objective.Point) bool {
	if len(utopia) == 0 || len(utopia) != len(nadir) {
		return false
	}
	for i := range utopia {
		if math.IsNaN(utopia[i]) || math.IsInf(utopia[i], 0) ||
			math.IsNaN(nadir[i]) || math.IsInf(nadir[i], 0) ||
			nadir[i] < utopia[i] {
			return false
		}
	}
	return true
}

// UncertainFraction returns the fraction of the [utopia, nadir] box left
// uncertain by the frontier points. 2D is computed exactly by a sweep;
// higher dimensions use a deterministic Monte Carlo estimate (30k samples,
// fixed seed), which is accurate to ~0.6%. A degenerate box (inverted or
// non-finite corners, see BoxValid) yields NaN.
func UncertainFraction(points []objective.Point, utopia, nadir objective.Point) float64 {
	if !BoxValid(utopia, nadir) {
		return math.NaN()
	}
	k := len(utopia)
	inside := clipToBox(points, utopia, nadir)
	if len(inside) == 0 {
		return 1
	}
	if k == 2 {
		return uncertain2D(inside, utopia, nadir)
	}
	return uncertainMC(inside, utopia, nadir, 30_000)
}

// clipToBox normalizes the points into [0,1]^k relative to the box and
// clamps them onto it; points are deduplicated, and points with the wrong
// dimensionality or non-finite components are dropped — callers are not
// required to pre-clean the frontier.
func clipToBox(points []objective.Point, utopia, nadir objective.Point) []objective.Point {
	seen := make(map[string]bool)
	var out []objective.Point
	for _, p := range points {
		if !pointUsable(p, len(utopia)) {
			continue
		}
		q := objective.Normalize(p, utopia, nadir)
		key := ""
		for i := range q {
			if q[i] < 0 {
				q[i] = 0
			}
			if q[i] > 1 {
				q[i] = 1
			}
			key += fmtKey(q[i])
		}
		if !seen[key] {
			seen[key] = true
			out = append(out, q)
		}
	}
	return out
}

// pointUsable reports whether p has the box's dimensionality and only finite
// components.
func pointUsable(p objective.Point, k int) bool {
	if len(p) != k {
		return false
	}
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

func fmtKey(v float64) string {
	return strconv.FormatFloat(v, 'f', 9, 64) + "|"
}

// uncertain2D sweeps the frontier left to right. With points sorted by the
// first objective, the dominated region is a staircase above/right of the
// frontier and the empty region a staircase below/left; the rest is a set of
// rectangles between consecutive frontier steps.
func uncertain2D(pts []objective.Point, _, _ objective.Point) float64 {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i][0] != pts[j][0] {
			return pts[i][0] < pts[j][0]
		}
		return pts[i][1] < pts[j][1]
	})
	// Keep the non-dominated staircase only (y strictly decreasing).
	var stair []objective.Point
	bestY := math.Inf(1)
	for _, p := range pts {
		if p[1] < bestY {
			stair = append(stair, p)
			bestY = p[1]
		}
	}
	// Dominated volume: union of [p, (1,1)] boxes.
	dom := 0.0
	prevX := 1.0
	for i := len(stair) - 1; i >= 0; i-- {
		p := stair[i]
		dom += (prevX - p[0]) * (1 - p[1])
		prevX = p[0]
	}
	// Empty volume: union of [(0,0), p] boxes. With y strictly decreasing
	// along the staircase, the union decomposes into horizontal slabs
	// x ∈ [0, x_i], y ∈ [y_{i+1}, y_i].
	empty := 0.0
	for i, p := range stair {
		nextY := 0.0
		if i+1 < len(stair) {
			nextY = stair[i+1][1]
		}
		empty += p[0] * (p[1] - nextY)
	}
	u := 1 - dom - empty
	if u < 0 {
		u = 0
	}
	return u
}

// uncertainMC estimates the uncertain fraction by sampling the unit box.
func uncertainMC(pts []objective.Point, _, _ objective.Point, samples int) float64 {
	rng := rand.New(rand.NewSource(20210415))
	k := len(pts[0])
	x := make(objective.Point, k)
	uncertain := 0
	for s := 0; s < samples; s++ {
		for d := 0; d < k; d++ {
			x[d] = rng.Float64()
		}
		classified := false
		for _, p := range pts {
			if p.WeaklyDominates(x) || x.WeaklyDominates(p) {
				classified = true
				break
			}
		}
		if !classified {
			uncertain++
		}
	}
	return float64(uncertain) / float64(samples)
}

// Hypervolume returns the fraction of the [utopia, nadir] box dominated by
// the frontier — the standard hypervolume indicator with the Nadir point as
// reference (higher is better). 2D is exact; higher dimensions use the same
// deterministic Monte Carlo estimate as UncertainFraction. Out-of-box points
// are clamped onto the box and non-finite or wrong-dimension points dropped;
// a degenerate box (see BoxValid) yields NaN.
func Hypervolume(points []objective.Point, utopia, nadir objective.Point) float64 {
	if !BoxValid(utopia, nadir) {
		return math.NaN()
	}
	inside := clipToBox(points, utopia, nadir)
	if len(inside) == 0 {
		return 0
	}
	if len(utopia) == 2 {
		sort.Slice(inside, func(i, j int) bool { return inside[i][0] < inside[j][0] })
		dom := 0.0
		bestY := math.Inf(1)
		prevX := 1.0
		var stair []objective.Point
		for _, p := range inside {
			if p[1] < bestY {
				stair = append(stair, p)
				bestY = p[1]
			}
		}
		for i := len(stair) - 1; i >= 0; i-- {
			dom += (prevX - stair[i][0]) * (1 - stair[i][1])
			prevX = stair[i][0]
		}
		return dom
	}
	rng := rand.New(rand.NewSource(774411))
	k := len(utopia)
	x := make(objective.Point, k)
	hit := 0
	const samples = 30_000
	for s := 0; s < samples; s++ {
		for d := 0; d < k; d++ {
			x[d] = rng.Float64()
		}
		for _, p := range inside {
			if p.WeaklyDominates(x) {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(samples)
}

// Consistency quantifies how well frontier `next` preserves the information
// of an earlier frontier `prev` (both from the same algorithm at increasing
// budgets): for every point of prev, the distance to the closest
// weakly-dominating-or-equal point of next is measured in the normalized
// box, and the maximum over prev is returned. A consistent, incremental
// algorithm like PF yields 0 (every earlier point is retained or improved);
// randomized methods like Evo yield large values when later runs contradict
// earlier recommendations (Fig. 4(e)). A degenerate box (see BoxValid)
// yields NaN; unusable points (wrong dimension, non-finite) are dropped
// before comparison.
func Consistency(prev, next []objective.Point, utopia, nadir objective.Point) float64 {
	if !BoxValid(utopia, nadir) {
		return math.NaN()
	}
	np := clipToBox(prev, utopia, nadir)
	nn := clipToBox(next, utopia, nadir)
	if len(np) == 0 {
		return 0
	}
	if len(nn) == 0 {
		return math.Inf(1)
	}
	worst := 0.0
	for _, p := range np {
		best := math.Inf(1)
		for _, q := range nn {
			if q.WeaklyDominates(p) {
				best = 0
				break
			}
			if d := q.Dist(p); d < best {
				best = d
			}
		}
		if best > worst {
			worst = best
		}
	}
	return worst
}

// Coverage counts the points of the frontier that fall inside the box and
// are mutually non-dominated — the "number of Pareto points produced"
// reported for WS/NC in Fig. 4(b). A degenerate box (see BoxValid) yields 0:
// no point can be meaningfully placed in it.
func Coverage(points []objective.Point, utopia, nadir objective.Point) int {
	if !BoxValid(utopia, nadir) {
		return 0
	}
	inside := clipToBox(points, utopia, nadir)
	n := 0
	for i, p := range inside {
		dominated := false
		for j, q := range inside {
			if i != j && q.Dominates(p) {
				dominated = true
				break
			}
		}
		if !dominated {
			n++
		}
	}
	return n
}
