// Package metrics implements the evaluation measures of the paper's
// performance study (§VI): the uncertain-space percentage that Figures 4, 5
// and 8 track over time, the dominated-hypervolume indicator, and the
// frontier-consistency measure that exposes the Evo inconsistency of
// Fig. 4(e).
//
// All measures operate on minimization objective spaces bounded by a global
// [Utopia, Nadir] box. Given a set of (assumed Pareto-optimal) points P, the
// box splits into three parts: the region dominated by some p ∈ P (certainly
// not on the frontier), the region dominating some p ∈ P (certainly empty —
// otherwise p would not be Pareto optimal), and the rest, which remains
// uncertain. The uncertain fraction is the volume of that rest divided by
// the box volume.
package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strconv"

	"repro/internal/objective"
)

// UncertainFraction returns the fraction of the [utopia, nadir] box left
// uncertain by the frontier points. 2D is computed exactly by a sweep;
// higher dimensions use a deterministic Monte Carlo estimate (30k samples,
// fixed seed), which is accurate to ~0.6%.
func UncertainFraction(points []objective.Point, utopia, nadir objective.Point) float64 {
	k := len(utopia)
	inside := clipToBox(points, utopia, nadir)
	if len(inside) == 0 {
		return 1
	}
	if k == 2 {
		return uncertain2D(inside, utopia, nadir)
	}
	return uncertainMC(inside, utopia, nadir, 30_000)
}

// clipToBox normalizes the points into [0,1]^k relative to the box and
// clamps them onto it; points are deduplicated.
func clipToBox(points []objective.Point, utopia, nadir objective.Point) []objective.Point {
	seen := make(map[string]bool)
	var out []objective.Point
	for _, p := range points {
		q := objective.Normalize(p, utopia, nadir)
		key := ""
		for i := range q {
			if q[i] < 0 {
				q[i] = 0
			}
			if q[i] > 1 {
				q[i] = 1
			}
			key += fmtKey(q[i])
		}
		if !seen[key] {
			seen[key] = true
			out = append(out, q)
		}
	}
	return out
}

func fmtKey(v float64) string {
	return strconv.FormatFloat(v, 'f', 9, 64) + "|"
}

// uncertain2D sweeps the frontier left to right. With points sorted by the
// first objective, the dominated region is a staircase above/right of the
// frontier and the empty region a staircase below/left; the rest is a set of
// rectangles between consecutive frontier steps.
func uncertain2D(pts []objective.Point, _, _ objective.Point) float64 {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i][0] != pts[j][0] {
			return pts[i][0] < pts[j][0]
		}
		return pts[i][1] < pts[j][1]
	})
	// Keep the non-dominated staircase only (y strictly decreasing).
	var stair []objective.Point
	bestY := math.Inf(1)
	for _, p := range pts {
		if p[1] < bestY {
			stair = append(stair, p)
			bestY = p[1]
		}
	}
	// Dominated volume: union of [p, (1,1)] boxes.
	dom := 0.0
	prevX := 1.0
	for i := len(stair) - 1; i >= 0; i-- {
		p := stair[i]
		dom += (prevX - p[0]) * (1 - p[1])
		prevX = p[0]
	}
	// Empty volume: union of [(0,0), p] boxes. With y strictly decreasing
	// along the staircase, the union decomposes into horizontal slabs
	// x ∈ [0, x_i], y ∈ [y_{i+1}, y_i].
	empty := 0.0
	for i, p := range stair {
		nextY := 0.0
		if i+1 < len(stair) {
			nextY = stair[i+1][1]
		}
		empty += p[0] * (p[1] - nextY)
	}
	u := 1 - dom - empty
	if u < 0 {
		u = 0
	}
	return u
}

// uncertainMC estimates the uncertain fraction by sampling the unit box.
func uncertainMC(pts []objective.Point, _, _ objective.Point, samples int) float64 {
	rng := rand.New(rand.NewSource(20210415))
	k := len(pts[0])
	x := make(objective.Point, k)
	uncertain := 0
	for s := 0; s < samples; s++ {
		for d := 0; d < k; d++ {
			x[d] = rng.Float64()
		}
		classified := false
		for _, p := range pts {
			if p.WeaklyDominates(x) || x.WeaklyDominates(p) {
				classified = true
				break
			}
		}
		if !classified {
			uncertain++
		}
	}
	return float64(uncertain) / float64(samples)
}

// Hypervolume returns the fraction of the [utopia, nadir] box dominated by
// the frontier — the standard hypervolume indicator with the Nadir point as
// reference (higher is better). 2D is exact; higher dimensions use the same
// deterministic Monte Carlo estimate as UncertainFraction.
func Hypervolume(points []objective.Point, utopia, nadir objective.Point) float64 {
	inside := clipToBox(points, utopia, nadir)
	if len(inside) == 0 {
		return 0
	}
	if len(utopia) == 2 {
		sort.Slice(inside, func(i, j int) bool { return inside[i][0] < inside[j][0] })
		dom := 0.0
		bestY := math.Inf(1)
		prevX := 1.0
		var stair []objective.Point
		for _, p := range inside {
			if p[1] < bestY {
				stair = append(stair, p)
				bestY = p[1]
			}
		}
		for i := len(stair) - 1; i >= 0; i-- {
			dom += (prevX - stair[i][0]) * (1 - stair[i][1])
			prevX = stair[i][0]
		}
		return dom
	}
	rng := rand.New(rand.NewSource(774411))
	k := len(utopia)
	x := make(objective.Point, k)
	hit := 0
	const samples = 30_000
	for s := 0; s < samples; s++ {
		for d := 0; d < k; d++ {
			x[d] = rng.Float64()
		}
		for _, p := range inside {
			if p.WeaklyDominates(x) {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(samples)
}

// Consistency quantifies how well frontier `next` preserves the information
// of an earlier frontier `prev` (both from the same algorithm at increasing
// budgets): for every point of prev, the distance to the closest
// weakly-dominating-or-equal point of next is measured in the normalized
// box, and the maximum over prev is returned. A consistent, incremental
// algorithm like PF yields 0 (every earlier point is retained or improved);
// randomized methods like Evo yield large values when later runs contradict
// earlier recommendations (Fig. 4(e)).
func Consistency(prev, next []objective.Point, utopia, nadir objective.Point) float64 {
	if len(prev) == 0 {
		return 0
	}
	if len(next) == 0 {
		return math.Inf(1)
	}
	np := clipToBox(prev, utopia, nadir)
	nn := clipToBox(next, utopia, nadir)
	worst := 0.0
	for _, p := range np {
		best := math.Inf(1)
		for _, q := range nn {
			if q.WeaklyDominates(p) {
				best = 0
				break
			}
			if d := q.Dist(p); d < best {
				best = d
			}
		}
		if best > worst {
			worst = best
		}
	}
	return worst
}

// Coverage counts the points of the frontier that fall inside the box and
// are mutually non-dominated — the "number of Pareto points produced"
// reported for WS/NC in Fig. 4(b).
func Coverage(points []objective.Point, utopia, nadir objective.Point) int {
	inside := clipToBox(points, utopia, nadir)
	n := 0
	for i, p := range inside {
		dominated := false
		for j, q := range inside {
			if i != j && q.Dominates(p) {
				dominated = true
				break
			}
		}
		if !dominated {
			n++
		}
	}
	return n
}
