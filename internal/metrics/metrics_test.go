package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/objective"
)

var (
	u2 = objective.Point{0, 0}
	n2 = objective.Point{1, 1}
)

func TestUncertainFractionEmpty(t *testing.T) {
	if got := UncertainFraction(nil, u2, n2); got != 1 {
		t.Fatalf("empty frontier uncertainty = %v, want 1", got)
	}
}

func TestUncertainFractionSinglePoint2D(t *testing.T) {
	// A single point at the center: dominated quadrant 0.25, empty quadrant
	// 0.25, uncertain 0.5.
	got := UncertainFraction([]objective.Point{{0.5, 0.5}}, u2, n2)
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("uncertainty = %v, want 0.5", got)
	}
}

func TestUncertainFractionDenseFrontier2D(t *testing.T) {
	// A dense antidiagonal frontier leaves little uncertainty.
	var pts []objective.Point
	for i := 0; i <= 100; i++ {
		x := float64(i) / 100
		pts = append(pts, objective.Point{x, 1 - x})
	}
	got := UncertainFraction(pts, u2, n2)
	if got > 0.02 {
		t.Fatalf("dense frontier uncertainty = %v, want < 0.02", got)
	}
}

func TestUncertainFractionMonotoneInPoints(t *testing.T) {
	// Adding frontier points never increases uncertainty.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var pts []objective.Point
		prev := 1.0
		for i := 0; i < 10; i++ {
			// random antidiagonal-ish staircase (mutually non-dominated)
			x := float64(i)/10 + rng.Float64()*0.05
			y := prev - 0.05 - rng.Float64()*0.04
			prev = y
			pts = append(pts, objective.Point{x, y})
			u1 := UncertainFraction(pts[:i+1], u2, n2)
			if i > 0 {
				u0 := UncertainFraction(pts[:i], u2, n2)
				if u1 > u0+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestUncertainFraction3DMatchesAnalytic(t *testing.T) {
	// One point at the center of the cube: dominated octant 1/8, empty
	// octant 1/8, uncertain 3/4.
	u3 := objective.Point{0, 0, 0}
	n3 := objective.Point{1, 1, 1}
	got := UncertainFraction([]objective.Point{{0.5, 0.5, 0.5}}, u3, n3)
	if math.Abs(got-0.75) > 0.01 {
		t.Fatalf("3D uncertainty = %v, want ~0.75", got)
	}
}

func TestUncertain2DAgreesWithMC(t *testing.T) {
	pts := []objective.Point{{0.2, 0.8}, {0.5, 0.4}, {0.9, 0.1}}
	exact := UncertainFraction(pts, u2, n2)
	mc := uncertainMC(clipToBox(pts, u2, n2), u2, n2, 200_000)
	if math.Abs(exact-mc) > 0.01 {
		t.Fatalf("2D exact %v vs MC %v", exact, mc)
	}
}

func TestHypervolume(t *testing.T) {
	// Point at center dominates a quadrant of volume 0.25.
	got := Hypervolume([]objective.Point{{0.5, 0.5}}, u2, n2)
	if math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("HV = %v, want 0.25", got)
	}
	if hv := Hypervolume(nil, u2, n2); hv != 0 {
		t.Fatalf("empty HV = %v", hv)
	}
	// Utopia point dominates everything.
	if hv := Hypervolume([]objective.Point{{0, 0}}, u2, n2); math.Abs(hv-1) > 1e-12 {
		t.Fatalf("utopia HV = %v, want 1", hv)
	}
	// 3D MC path.
	u3 := objective.Point{0, 0, 0}
	n3 := objective.Point{1, 1, 1}
	hv3 := Hypervolume([]objective.Point{{0.5, 0.5, 0.5}}, u3, n3)
	if math.Abs(hv3-0.125) > 0.01 {
		t.Fatalf("3D HV = %v, want ~0.125", hv3)
	}
}

func TestHypervolumePlusSinglePointUncertainty(t *testing.T) {
	// For any single point p: uncertain + dominated + empty == 1 in 2D.
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		p := objective.Point{math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))}
		un := UncertainFraction([]objective.Point{p}, u2, n2)
		hv := Hypervolume([]objective.Point{p}, u2, n2)
		empty := p[0] * p[1]
		return math.Abs(un+hv+empty-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConsistency(t *testing.T) {
	prev := []objective.Point{{0.3, 0.7}, {0.7, 0.3}}
	// Identical frontier: perfectly consistent.
	if c := Consistency(prev, prev, u2, n2); c != 0 {
		t.Fatalf("self consistency = %v, want 0", c)
	}
	// A dominating frontier is also consistent.
	better := []objective.Point{{0.2, 0.6}, {0.6, 0.2}}
	if c := Consistency(prev, better, u2, n2); c != 0 {
		t.Fatalf("improving consistency = %v, want 0", c)
	}
	// A contradicting frontier (worse in both objectives, far away).
	worse := []objective.Point{{0.9, 0.9}}
	if c := Consistency(prev, worse, u2, n2); c < 0.2 {
		t.Fatalf("contradiction consistency = %v, want > 0.2", c)
	}
	// Edge cases.
	if c := Consistency(nil, prev, u2, n2); c != 0 {
		t.Fatalf("empty prev = %v", c)
	}
	if c := Consistency(prev, nil, u2, n2); !math.IsInf(c, 1) {
		t.Fatalf("empty next = %v, want +Inf", c)
	}
}

func TestCoverage(t *testing.T) {
	pts := []objective.Point{
		{0.2, 0.8}, {0.5, 0.5}, {0.8, 0.2}, // frontier
		{0.6, 0.6}, // dominated by (0.5,0.5)
		{0.2, 0.8}, // duplicate
	}
	if c := Coverage(pts, u2, n2); c != 3 {
		t.Fatalf("Coverage = %d, want 3", c)
	}
	if c := Coverage(nil, u2, n2); c != 0 {
		t.Fatalf("empty Coverage = %d", c)
	}
}

func TestDegenerateBoxSentinels(t *testing.T) {
	pts := []objective.Point{{0.5, 0.5}}
	inverted := objective.Point{1, 1}
	origin := objective.Point{0, 0}
	if !math.IsNaN(UncertainFraction(pts, inverted, origin)) {
		t.Fatal("inverted box: UncertainFraction should be NaN")
	}
	if !math.IsNaN(Hypervolume(pts, inverted, origin)) {
		t.Fatal("inverted box: Hypervolume should be NaN")
	}
	if !math.IsNaN(Consistency(pts, pts, inverted, origin)) {
		t.Fatal("inverted box: Consistency should be NaN")
	}
	if c := Coverage(pts, inverted, origin); c != 0 {
		t.Fatalf("inverted box: Coverage = %d, want 0", c)
	}
	nan := objective.Point{math.NaN(), 1}
	if !math.IsNaN(Hypervolume(pts, origin, nan)) {
		t.Fatal("NaN corner: Hypervolume should be NaN")
	}
	inf := objective.Point{math.Inf(1), 1}
	if !math.IsNaN(Hypervolume(pts, origin, inf)) {
		t.Fatal("Inf corner: Hypervolume should be NaN")
	}
	if len(origin) != 2 || BoxValid(origin, objective.Point{1}) {
		t.Fatal("dimension mismatch should invalidate the box")
	}
	// Zero-span axes stay valid (Normalize maps them to 0).
	if !BoxValid(objective.Point{0, 0}, objective.Point{0, 1}) {
		t.Fatal("zero-span axis should keep the box valid")
	}
}

func TestUnusablePointsDropped(t *testing.T) {
	clean := []objective.Point{{0.5, 0.5}}
	dirty := []objective.Point{
		{0.5, 0.5},
		{math.NaN(), 0.2},  // non-finite: dropped
		{0.1, math.Inf(1)}, // non-finite: dropped
		{0.1, 0.2, 0.3},    // wrong dimension: dropped
		{-3, 0.5},          // out of box: clamped onto it
		{0.5, 7},           // out of box: clamped onto it
	}
	// The clamped points land on the box faces and only shrink uncertainty;
	// the key property is that no NaN leaks out and HV stays finite.
	hv := Hypervolume(dirty, u2, n2)
	if math.IsNaN(hv) || hv < Hypervolume(clean, u2, n2) {
		t.Fatalf("dirty HV = %v", hv)
	}
	if u := UncertainFraction(dirty, u2, n2); math.IsNaN(u) || u > UncertainFraction(clean, u2, n2) {
		t.Fatalf("dirty uncertainty = %v", u)
	}
	if c := Consistency(dirty, dirty, u2, n2); c != 0 {
		t.Fatalf("dirty self-consistency = %v", c)
	}
	// A frontier of only unusable points behaves like an empty one.
	junk := []objective.Point{{math.NaN(), math.NaN()}}
	if u := UncertainFraction(junk, u2, n2); u != 1 {
		t.Fatalf("junk uncertainty = %v, want 1", u)
	}
	if hv := Hypervolume(junk, u2, n2); hv != 0 {
		t.Fatalf("junk HV = %v, want 0", hv)
	}
}

func TestDuplicateDedup(t *testing.T) {
	a := []objective.Point{{0.5, 0.5}}
	b := []objective.Point{{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}}
	if UncertainFraction(a, u2, n2) != UncertainFraction(b, u2, n2) {
		t.Fatal("duplicates should not change the measure")
	}
}
