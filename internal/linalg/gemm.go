package linalg

import (
	"fmt"
	"unsafe"
)

// Blocked GEMM kernels — the matrix hot path under the batched DNN
// forward/backward pass (internal/model/dnn) and everything built on it
// (batched MOGD multi-start, population evaluation in the moo baselines).
//
// All three kernels accumulate into C:
//
//	GemmNN:  C += A·B
//	GemmNT:  C += A·Bᵀ
//	GemmTN:  C += Aᵀ·B
//
// Determinism contract: every output element C[i,j] is a running sum that
// starts from the value already stored in C and adds its products in strictly
// ascending k order — exactly the order the scalar loops in model/dnn use.
// Register tiling therefore draws its instruction-level parallelism from
// *independent* output elements (2×4 / 4×2 tiles of accumulator chains), never
// from splitting one element's sum, so the batched pass stays bit-identical
// to the scalar pass. Zero operands are not skipped (a skipped ±0 term can
// flip the sign of a zero sum); equality of results is float equality, under
// which -0 == +0.
//
// The kernels panic on dimension mismatches and on aliasing: C must not share
// memory with A or B (an aliased accumulator would read half-updated values).

// overlap reports whether the two slices share any backing memory.
func overlap(a, b []float64) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	pa := uintptr(unsafe.Pointer(&a[0]))
	pb := uintptr(unsafe.Pointer(&b[0]))
	ea := pa + uintptr(len(a))*8
	eb := pb + uintptr(len(b))*8
	return pa < eb && pb < ea
}

func checkGemm(name string, am, an, bm, bn, cm, cn int, a, b, c *Matrix) {
	if an != bm {
		panic(fmt.Sprintf("linalg: %s inner dimension mismatch %d != %d", name, an, bm))
	}
	if cm != am || cn != bn {
		panic(fmt.Sprintf("linalg: %s output is %dx%d, want %dx%d", name, cm, cn, am, bn))
	}
	if overlap(c.Data, a.Data) || overlap(c.Data, b.Data) {
		panic(fmt.Sprintf("linalg: %s output aliases an input", name))
	}
}

// GemmNT computes C += A·Bᵀ for row-major A (m×K), B (n×K), C (m×n). This is
// the layout of a dense-layer forward pass: activations (batch×in) times a
// weight matrix stored out×in. Each C[i,j] accumulates dot(A row i, B row j)
// in ascending k order on top of C's prior value (the bias, in the DNN case).
func GemmNT(a, b, c *Matrix) {
	m, kk, n := a.Rows, a.Cols, b.Rows
	checkGemm("GemmNT", m, kk, b.Cols, n, c.Rows, c.Cols, a, b, c)
	if kk == 0 {
		return
	}
	i := 0
	// 4×2 register tile: eight independent accumulator chains per k step.
	for ; i+4 <= m; i += 4 {
		a0 := a.Row(i)[:kk]
		a1 := a.Row(i + 1)[:kk]
		a2 := a.Row(i + 2)[:kk]
		a3 := a.Row(i + 3)[:kk]
		c0, c1, c2, c3 := c.Row(i), c.Row(i+1), c.Row(i+2), c.Row(i+3)
		j := 0
		for ; j+2 <= n; j += 2 {
			b0 := b.Row(j)[:kk]
			b1 := b.Row(j + 1)[:kk]
			s00, s01 := c0[j], c0[j+1]
			s10, s11 := c1[j], c1[j+1]
			s20, s21 := c2[j], c2[j+1]
			s30, s31 := c3[j], c3[j+1]
			for k := 0; k < kk; k++ {
				av0, av1, av2, av3 := a0[k], a1[k], a2[k], a3[k]
				bv0, bv1 := b0[k], b1[k]
				s00 += av0 * bv0
				s01 += av0 * bv1
				s10 += av1 * bv0
				s11 += av1 * bv1
				s20 += av2 * bv0
				s21 += av2 * bv1
				s30 += av3 * bv0
				s31 += av3 * bv1
			}
			c0[j], c0[j+1] = s00, s01
			c1[j], c1[j+1] = s10, s11
			c2[j], c2[j+1] = s20, s21
			c3[j], c3[j+1] = s30, s31
		}
		for ; j < n; j++ {
			brow := b.Row(j)[:kk]
			s0, s1, s2, s3 := c0[j], c1[j], c2[j], c3[j]
			for k := 0; k < kk; k++ {
				bv := brow[k]
				s0 += a0[k] * bv
				s1 += a1[k] * bv
				s2 += a2[k] * bv
				s3 += a3[k] * bv
			}
			c0[j], c1[j], c2[j], c3[j] = s0, s1, s2, s3
		}
	}
	for ; i < m; i++ {
		arow := a.Row(i)[:kk]
		crow := c.Row(i)
		j := 0
		for ; j+2 <= n; j += 2 {
			b0 := b.Row(j)[:kk]
			b1 := b.Row(j + 1)[:kk]
			s0, s1 := crow[j], crow[j+1]
			for k := 0; k < kk; k++ {
				av := arow[k]
				s0 += av * b0[k]
				s1 += av * b1[k]
			}
			crow[j], crow[j+1] = s0, s1
		}
		for ; j < n; j++ {
			brow := b.Row(j)[:kk]
			s := crow[j]
			for k := 0; k < kk; k++ {
				s += arow[k] * brow[k]
			}
			crow[j] = s
		}
	}
}

// GemmNN computes C += A·B for row-major A (m×K), B (K×n), C (m×n). This is
// the layout of backpropagation through a dense layer: output deltas
// (batch×out) times the weight matrix (out×in). The i-k-j loop order streams
// B rows while keeping each C[i,j]'s accumulation in ascending k order.
func GemmNN(a, b, c *Matrix) {
	m, kk, n := a.Rows, a.Cols, b.Rows
	checkGemm("GemmNN", m, kk, kk, b.Cols, c.Rows, c.Cols, a, b, c)
	_ = n
	nn := b.Cols
	i := 0
	// Two A rows per pass: each B row load feeds two accumulator rows.
	for ; i+2 <= m; i += 2 {
		a0 := a.Row(i)[:kk]
		a1 := a.Row(i + 1)[:kk]
		c0 := c.Row(i)[:nn]
		c1 := c.Row(i + 1)[:nn]
		for k := 0; k < kk; k++ {
			av0, av1 := a0[k], a1[k]
			brow := b.Row(k)[:nn]
			for j, bv := range brow {
				c0[j] += av0 * bv
				c1[j] += av1 * bv
			}
		}
	}
	for ; i < m; i++ {
		arow := a.Row(i)[:kk]
		crow := c.Row(i)[:nn]
		for k := 0; k < kk; k++ {
			av := arow[k]
			brow := b.Row(k)[:nn]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// GemmTN computes C += Aᵀ·B for row-major A (K×m), B (K×n), C (m×n) — the
// weight-gradient layout (inputsᵀ times deltas) offered for completeness and
// future batched training. The k-i-j order keeps ascending-k accumulation.
func GemmTN(a, b, c *Matrix) {
	kk, m, n := a.Rows, a.Cols, b.Cols
	checkGemm("GemmTN", m, kk, b.Rows, n, c.Rows, c.Cols, a, b, c)
	for k := 0; k < kk; k++ {
		arow := a.Row(k)[:m]
		brow := b.Row(k)[:n]
		for i, av := range arow {
			crow := c.Row(i)[:n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}
