package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refGemm is the textbook triple loop every kernel must match bit-for-bit:
// ascending-k accumulation starting from C's prior value.
func refGemm(a, b, c *Matrix, ta, tb bool) {
	rowA := func(i, k int) float64 {
		if ta {
			return a.At(k, i)
		}
		return a.At(i, k)
	}
	rowB := func(k, j int) float64 {
		if tb {
			return b.At(j, k)
		}
		return b.At(k, j)
	}
	m, kk := a.Rows, a.Cols
	if ta {
		m, kk = a.Cols, a.Rows
	}
	n := b.Cols
	if tb {
		n = b.Rows
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := c.At(i, j)
			for k := 0; k < kk; k++ {
				s += rowA(i, k) * rowB(k, j)
			}
			c.Set(i, j, s)
		}
	}
}

func randMat(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func gemmCase(t *testing.T, rng *rand.Rand, m, kk, n int) {
	t.Helper()
	type variant struct {
		name   string
		kernel func(a, b, c *Matrix)
		ar, ac int
		br, bc int
		ta, tb bool
	}
	for _, v := range []variant{
		{"NN", GemmNN, m, kk, kk, n, false, false},
		{"NT", GemmNT, m, kk, n, kk, false, true},
		{"TN", GemmTN, kk, m, kk, n, true, false},
	} {
		a := randMat(rng, v.ar, v.ac)
		b := randMat(rng, v.br, v.bc)
		c := randMat(rng, m, n)
		want := c.Clone()
		refGemm(a, b, want, v.ta, v.tb)
		v.kernel(a, b, c)
		for i := range c.Data {
			if c.Data[i] != want.Data[i] {
				t.Fatalf("Gemm%s %dx%dx%d: element %d = %v, scalar reference %v",
					v.name, m, kk, n, i, c.Data[i], want.Data[i])
			}
		}
	}
}

// TestGemmMatchesScalar sweeps shapes around every tile boundary — including
// non-block-divisible sizes, 1×N / N×1 degenerates, and empty inner
// dimensions — asserting bit-identity with the scalar triple loop.
func TestGemmMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dims := []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 17}
	for _, m := range dims {
		for _, kk := range dims {
			for _, n := range dims {
				gemmCase(t, rng, m, kk, n)
			}
		}
	}
	// Degenerate inner dimension: C must be left exactly as-is.
	for _, shape := range [][2]int{{1, 1}, {3, 5}} {
		a := NewMatrix(shape[0], 0)
		b := NewMatrix(shape[1], 0)
		c := randMat(rng, shape[0], shape[1])
		want := c.Clone()
		GemmNT(a, b, c)
		for i := range c.Data {
			if c.Data[i] != want.Data[i] {
				t.Fatalf("GemmNT with K=0 modified C")
			}
		}
	}
}

// TestGemmProperty is the randomized scalar-vs-blocked equivalence check,
// suitable for the -race matrix (the kernels are single-goroutine; the race
// build mainly exercises the bounds/aliasing instrumentation).
func TestGemmProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(ms, ks, ns uint8) bool {
		m := int(ms%24) + 1
		kk := int(ks % 96)
		n := int(ns%24) + 1
		a := randMat(rng, m, kk)
		b := randMat(rng, n, kk)
		c := randMat(rng, m, n)
		want := c.Clone()
		refGemm(a, b, want, false, true)
		GemmNT(a, b, c)
		for i := range c.Data {
			if c.Data[i] != want.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func wantPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestGemmGuards(t *testing.T) {
	a := NewMatrix(4, 3)
	b := NewMatrix(5, 3)
	c := NewMatrix(4, 5)

	// Dimension mismatches.
	wantPanic(t, "NT inner", func() { GemmNT(a, NewMatrix(5, 2), c) })
	wantPanic(t, "NT out", func() { GemmNT(a, b, NewMatrix(3, 5)) })
	wantPanic(t, "NN inner", func() { GemmNN(a, NewMatrix(2, 5), c) })
	wantPanic(t, "TN inner", func() { GemmTN(NewMatrix(2, 4), NewMatrix(3, 5), c) })

	// Aliasing: C sharing backing memory with A or B must panic, including
	// partial overlap through a shared backing slice.
	sq := NewMatrix(4, 4)
	wantPanic(t, "alias C==A", func() { GemmNT(sq, NewMatrix(4, 4), sq) })
	backing := make([]float64, 32)
	av := NewMatrixFrom(4, 4, backing[:16])
	cv := NewMatrixFrom(4, 4, backing[8:24]) // overlaps av's tail
	wantPanic(t, "alias partial", func() { GemmNT(av, NewMatrix(4, 4), cv) })

	// Disjoint views over one backing slice are fine.
	bv := NewMatrixFrom(4, 4, backing[16:32])
	GemmNT(av, NewMatrix(4, 4), bv)
}
