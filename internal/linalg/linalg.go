// Package linalg provides the small dense linear-algebra kernel used by the
// learned performance models (Gaussian processes, LASSO feature selection).
//
// It is deliberately minimal: dense row-major matrices, Cholesky
// factorization, and triangular solves are all the Gaussian-process posterior
// and the coordinate-descent LASSO need. Everything is float64 and
// allocation-conscious so GP retraining inside benchmarks stays cheap.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is not
// (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewMatrixFrom builds an r×c matrix from data (which is used directly, not
// copied). It panics if len(data) != r*c.
func NewMatrixFrom(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("linalg: data length %d != %d*%d", len(data), r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: data}
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// MatVec computes y = m·x. It panics on dimension mismatch.
func (m *Matrix) MatVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MatVec dimension mismatch %d != %d", len(x), m.Cols))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// MatMul computes m·b as a new matrix. It panics on dimension mismatch.
func (m *Matrix) MatMul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: MatMul dimension mismatch %d != %d", m.Cols, b.Rows))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		arow := m.Row(i)
		orow := out.Row(i)
		for k, a := range arow {
			if a == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// AddDiag adds v to every diagonal element of m (in place); used for jitter
// and noise variance in GP kernels.
func (m *Matrix) AddDiag(v float64) {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.Data[i*m.Cols+i] += v
	}
}

// Cholesky computes the lower-triangular L with m = L·Lᵀ. m must be
// symmetric positive definite; otherwise ErrNotPositiveDefinite is returned.
// Only the lower triangle of m is read.
func Cholesky(m *Matrix) (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: Cholesky requires a square matrix, got %dx%d", m.Rows, m.Cols)
	}
	n := m.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := m.At(i, j)
			li := l.Row(i)
			lj := l.Row(j)
			for k := 0; k < j; k++ {
				sum -= li[k] * lj[k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotPositiveDefinite
				}
				li[j] = math.Sqrt(sum)
			} else {
				li[j] = sum / lj[j]
			}
		}
	}
	return l, nil
}

// SolveLower solves L·y = b for lower-triangular L by forward substitution.
func SolveLower(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("linalg: SolveLower dimension mismatch")
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	return y
}

// SolveUpperT solves Lᵀ·x = y for lower-triangular L (i.e. an upper
// triangular solve against the transpose) by backward substitution.
func SolveUpperT(l *Matrix, y []float64) []float64 {
	n := l.Rows
	if len(y) != n {
		panic("linalg: SolveUpperT dimension mismatch")
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// CholSolve solves m·x = b given the Cholesky factor L of m.
func CholSolve(l *Matrix, b []float64) []float64 {
	return SolveUpperT(l, SolveLower(l, b))
}

// LogDetFromChol returns log|m| given the Cholesky factor L of m.
func LogDetFromChol(l *Matrix) float64 {
	s := 0.0
	for i := 0; i < l.Rows; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s
}

// Dot returns the inner product of a and b. It panics on length mismatch.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// Dist2 returns the squared Euclidean distance between a and b.
func Dist2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dist2 length mismatch")
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of v by alpha, in place.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// CopyVec returns a copy of v.
func CopyVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Mean returns the arithmetic mean of v (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// StdDev returns the population standard deviation of v.
func StdDev(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	s := 0.0
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)))
}

// Clamp limits x into [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
