package linalg

import (
	"math/rand"
	"testing"
)

// BenchmarkGEMM measures the NT kernel on the MOGD hot shape: 8 multi-starts
// of activations through a 64×64 hidden layer (C += A·Wᵀ).
func BenchmarkGEMM(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randMat(rng, 8, 64)
	w := randMat(rng, 64, 64)
	c := NewMatrix(8, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmNT(a, w, c)
	}
}

// BenchmarkGEMMScalarRef is the unblocked triple loop on the same shape, kept
// as the speedup reference for the tiled kernel.
func BenchmarkGEMMScalarRef(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randMat(rng, 8, 64)
	w := randMat(rng, 64, 64)
	c := NewMatrix(8, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refGemm(a, w, c, false, true)
	}
}
