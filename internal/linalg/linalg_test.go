package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 3)
	m.Set(1, 1, 5)
	if got := m.At(0, 2); got != 3 {
		t.Fatalf("At(0,2) = %v, want 3", got)
	}
	row := m.Row(1)
	if row[1] != 5 {
		t.Fatalf("Row(1)[1] = %v, want 5", row[1])
	}
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone is not a deep copy")
	}
}

func TestNewMatrixFromPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad length")
		}
	}()
	NewMatrixFrom(2, 2, []float64{1, 2, 3})
}

func TestTranspose(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("T dims = %dx%d", mt.Rows, mt.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("T mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestMatVec(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	y := m.MatVec([]float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MatVec = %v, want [6 15]", y)
	}
}

func TestMatMul(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewMatrixFrom(2, 2, []float64{5, 6, 7, 8})
	c := a.MatMul(b)
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul.Data = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 5
	a := NewMatrix(n, n)
	eye := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		eye.Set(i, i, 1)
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	c := a.MatMul(eye)
	for i := range a.Data {
		if !almostEq(a.Data[i], c.Data[i], 1e-12) {
			t.Fatalf("A·I != A at %d", i)
		}
	}
}

// randomSPD builds a random symmetric positive-definite matrix A = BᵀB + n·I.
func randomSPD(n int, rng *rand.Rand) *Matrix {
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := b.T().MatMul(b)
	a.AddDiag(float64(n))
	return a
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(8)
		a := randomSPD(n, rng)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("Cholesky failed on SPD matrix: %v", err)
		}
		llt := l.MatMul(l.T())
		for i := range a.Data {
			if !almostEq(a.Data[i], llt.Data[i], 1e-8) {
				t.Fatalf("trial %d: L·Lᵀ != A at index %d: %v vs %v", trial, i, llt.Data[i], a.Data[i])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float64{1, 0, 0, -1})
	if _, err := Cholesky(m); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
	r := NewMatrix(2, 3)
	if _, err := Cholesky(r); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestCholSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(10)
		a := randomSPD(n, rng)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := a.MatVec(x)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		got := CholSolve(l, b)
		for i := range x {
			if !almostEq(got[i], x[i], 1e-7) {
				t.Fatalf("trial %d: solve mismatch at %d: %v vs %v", trial, i, got[i], x[i])
			}
		}
	}
}

func TestLogDetFromChol(t *testing.T) {
	// diag(4, 9) has det 36, logdet = log 36.
	a := NewMatrixFrom(2, 2, []float64{4, 0, 0, 9})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := LogDetFromChol(l); !almostEq(got, math.Log(36), 1e-12) {
		t.Fatalf("logdet = %v, want %v", got, math.Log(36))
	}
}

func TestDotNormDist(t *testing.T) {
	a := []float64{3, 4}
	if Dot(a, a) != 25 {
		t.Fatalf("Dot = %v", Dot(a, a))
	}
	if Norm2(a) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(a))
	}
	if Dist2([]float64{0, 0}, a) != 25 {
		t.Fatalf("Dist2 = %v", Dist2([]float64{0, 0}, a))
	}
}

func TestAXPYScaleCopy(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{10, 20}
	AXPY(2, x, y)
	if y[0] != 12 || y[1] != 24 {
		t.Fatalf("AXPY = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 6 || y[1] != 12 {
		t.Fatalf("Scale = %v", y)
	}
	c := CopyVec(y)
	c[0] = -1
	if y[0] != 6 {
		t.Fatal("CopyVec aliases input")
	}
}

func TestMeanStd(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostEq(Mean(v), 5, 1e-12) {
		t.Fatalf("Mean = %v", Mean(v))
	}
	if !almostEq(StdDev(v), 2, 1e-12) {
		t.Fatalf("StdDev = %v", StdDev(v))
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty-input mean/std should be 0")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp wrong")
	}
}

// Property: Dot is symmetric and bilinear in the first argument.
func TestDotProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		a, b := raw[:n], raw[n:2*n]
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
		}
		if !almostEq(Dot(a, b), Dot(b, a), 1e-6*(1+math.Abs(Dot(a, b)))) {
			return false
		}
		a2 := CopyVec(a)
		Scale(2, a2)
		return almostEq(Dot(a2, b), 2*Dot(a, b), 1e-6*(1+math.Abs(Dot(a, b))))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cholesky solve is a right inverse: A · CholSolve(L, b) ≈ b.
func TestCholSolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		a := randomSPD(n, r)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		x := CholSolve(l, b)
		back := a.MatVec(x)
		for i := range b {
			if !almostEq(back[i], b[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
